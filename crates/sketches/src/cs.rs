//! The Count Sketch (CS) and its SALSA variant.
//!
//! CS (Charikar, Chen & Farach-Colton) works in the general Turnstile model
//! and provides an L2 guarantee.  Each row has an index hash and a
//! pairwise-independent sign hash; an update adds `v·g_i(x)` to the item's
//! counter in each row and the estimate is the median of
//! `C[i, h_i(x)]·g_i(x)` over the rows.
//!
//! The SALSA variant stores counters in sign-magnitude representation so the
//! overflow (merge) event is symmetric in the sign of the counter, keeping
//! the estimate unbiased (Lemma V.4) with per-row variance no larger than the
//! underlying CS (Lemma V.5, Theorem V.6).

use salsa_core::compact::LayoutCodes;
use salsa_core::encoding::MergeEncoding;
use salsa_core::fixed::FixedSignedRow;
use salsa_core::merge::RowMerge;
use salsa_core::row::SalsaSignedRow;
use salsa_core::traits::SignedRow;
use salsa_hash::{RowHashers, SignHash};

use crate::estimator::FrequencyEstimator;
use crate::helper::MergeHelper;

/// Rows up to this depth take the stack-buffer median path in
/// [`CountSketch::estimate`]; deeper sketches (unheard of in practice — the
/// paper uses single-digit depths) fall back to a heap buffer.
const MEDIAN_STACK_DEPTH: usize = 32;

/// A Count Sketch over an arbitrary signed-row type.
#[derive(Debug, Clone)]
pub struct CountSketch<S: SignedRow> {
    rows: Vec<S>,
    hashers: RowHashers,
    signs: SignHash,
    seed: u64,
}

impl<S: SignedRow> CountSketch<S> {
    /// Builds a sketch from pre-constructed rows and a hash seed.
    pub fn from_rows(rows: Vec<S>, seed: u64) -> Self {
        assert!(!rows.is_empty(), "a sketch needs at least one row");
        let width = rows[0].width();
        assert!(
            rows.iter().all(|r| r.width() == width),
            "all rows must have the same width"
        );
        let depth = rows.len();
        Self {
            rows,
            hashers: RowHashers::new(depth, width, seed),
            signs: SignHash::new(depth, seed),
            seed,
        }
    }

    /// The hash seed the sketch was built with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of rows (`d`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Counters per row (`w`, in base-counter units).
    #[inline]
    pub fn width(&self) -> usize {
        self.hashers.width()
    }

    /// Immutable access to the rows.
    pub fn rows(&self) -> &[S] {
        &self.rows
    }

    /// Processes the update `⟨item, value⟩` (Turnstile: any sign).
    #[inline]
    pub fn update(&mut self, item: u64, value: i64) {
        for (row_idx, row) in self.rows.iter_mut().enumerate() {
            let bucket = self.hashers.bucket(row_idx, item);
            let sign = self.signs.sign(row_idx, item);
            row.add(bucket, value * sign);
        }
    }

    /// Processes a batch of unit-weight updates row-major (all items against
    /// row 0, then row 1, …).
    ///
    /// Count Sketch updates are independent across rows, so the reordering
    /// is exact while keeping one row's counters, index hash and sign hash
    /// hot in cache across the whole batch.
    pub fn update_batch(&mut self, items: &[u64]) {
        for (row_idx, row) in self.rows.iter_mut().enumerate() {
            for &item in items {
                let bucket = self.hashers.bucket(row_idx, item);
                row.add(bucket, self.signs.sign(row_idx, item));
            }
        }
    }

    /// Estimates the frequency of `item` (median over the rows).
    ///
    /// The per-row values are collected into a stack buffer for the depths
    /// used in practice, so point queries allocate nothing — this sits on
    /// the steady-state query hot path.
    pub fn estimate(&self, item: u64) -> i64 {
        let n = self.rows.len();
        if n <= MEDIAN_STACK_DEPTH {
            let mut buf = [0i64; MEDIAN_STACK_DEPTH];
            for (row_idx, row) in self.rows.iter().enumerate() {
                buf[row_idx] =
                    row.read(self.hashers.bucket(row_idx, item)) * self.signs.sign(row_idx, item);
            }
            Self::median(&mut buf[..n])
        } else {
            // ALLOC-OK: depths beyond the stack buffer are outside every
            // practical configuration; correctness wins over allocation here.
            let mut per_row: Vec<i64> = self
                .rows
                .iter()
                .enumerate()
                .map(|(row_idx, row)| {
                    row.read(self.hashers.bucket(row_idx, item)) * self.signs.sign(row_idx, item)
                })
                .collect();
            Self::median(&mut per_row)
        }
    }

    /// Median of the (unsorted) per-row values; even lengths average the two
    /// middle values, rounded toward zero.
    fn median(per_row: &mut [i64]) -> i64 {
        per_row.sort_unstable();
        let n = per_row.len();
        if n % 2 == 1 {
            per_row[n / 2]
        } else {
            // Average of the two middle values, rounded toward zero.
            (per_row[n / 2 - 1] + per_row[n / 2]) / 2
        }
    }

    /// Total memory used by the sketch, including encoding overhead.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(SignedRow::size_bytes).sum()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.rows.iter_mut().for_each(SignedRow::reset);
    }

    /// Overwrites this sketch with `src`'s contents **without allocating**
    /// (see [`CountMin::copy_from`]).  Both sketches must share seed and
    /// shape.
    ///
    /// [`CountMin::copy_from`]: crate::cms::CountMin::copy_from
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(self.seed, src.seed, "sketches must share hash seeds");
        assert_eq!(self.depth(), src.depth(), "sketch depths must match");
        assert_eq!(self.width(), src.width(), "sketch widths must match");
        for (dst, src_row) in self.rows.iter_mut().zip(src.rows.iter()) {
            dst.copy_from(src_row);
        }
    }
}

impl<S: SignedRow + Clone> CountSketch<S> {
    /// Bytes copied when this sketch is cloned for a point-in-time snapshot:
    /// the rows' signed counter storage + encoding (the hash state is a
    /// handful of seeds and is ignored).
    pub fn clone_cost_bytes(&self) -> usize {
        self.rows.iter().map(SignedRow::clone_cost_bytes).sum()
    }
}

impl<S: SignedRow + RowMerge> CountSketch<S> {
    /// Absorbs another sketch built with the same seed and dimensions:
    /// `s(A ∪ B) = s(A) + s(B)`.
    pub fn absorb(&mut self, other: &Self) {
        assert_eq!(self.depth(), other.depth(), "sketch depths must match");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            a.absorb(b);
        }
    }

    /// Subtracts another sketch built with the same seed and dimensions:
    /// `s(A \ B) = s(A) − s(B)` (general Turnstile difference, used by
    /// change detection).
    pub fn subtract(&mut self, other: &Self) {
        assert_eq!(self.depth(), other.depth(), "sketch depths must match");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            a.subtract(b);
        }
    }

    /// Counter-wise merges `other` into `self` (same seeds and shape
    /// enforced): afterwards this sketch summarizes the union of the two
    /// input streams.
    ///
    /// Count Sketch counters are plain signed sums, so the merged sketch's
    /// per-row values equal those of a sketch fed both streams; the SALSA
    /// variant keeps the estimate unbiased across the merge (Lemma V.4).
    pub fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "sketches must share hash seeds to merge"
        );
        assert_eq!(self.depth(), other.depth(), "sketch depths must match");
        assert_eq!(self.width(), other.width(), "sketch widths must match");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            a.absorb(b);
        }
    }

    /// Counter-wise merges two sketches into a *new* one, leaving both
    /// operands untouched (same contract as [`CountSketch::merge_from`]).
    pub fn merge_into_new(&self, other: &Self) -> Self
    where
        S: Clone,
    {
        // ALLOC-OK: the allocating one-shot entry point, kept as a thin
        // wrapper over the allocation-free merge.
        let mut merged = self.clone();
        merged.merge_from(other);
        merged
    }

    /// Counter-wise merges `other` into `self`, reusing `helper`'s scratch.
    /// CS row merges are already allocation-free, so the helper is unused;
    /// the method exists for API uniformity across sketches.
    #[inline]
    pub fn merge_with_helper(&mut self, other: &Self, _helper: &mut MergeHelper) {
        self.merge_from(other);
    }
}

impl CountSketch<FixedSignedRow> {
    /// The paper's *Baseline* CS with fixed-width (32-bit by default)
    /// counters.
    pub fn baseline(depth: usize, width: usize, bits: u32, seed: u64) -> Self {
        Self::from_rows(
            (0..depth)
                .map(|_| FixedSignedRow::new(width, bits))
                .collect(),
            seed,
        )
    }
}

impl<E: MergeEncoding> CountSketch<SalsaSignedRow<E>> {
    /// A SALSA CS with an explicit merge encoding (sum-merge, sign-magnitude
    /// counters).
    pub fn salsa_with_encoding(depth: usize, width: usize, base_bits: u32, seed: u64) -> Self {
        Self::from_rows(
            (0..depth)
                .map(|_| SalsaSignedRow::<E>::new(width, base_bits))
                .collect(),
            seed,
        )
    }
}

impl CountSketch<SalsaSignedRow<salsa_core::bitmap::MergeBitmap>> {
    /// A SALSA CS with the simple encoding (the paper's default).
    pub fn salsa(depth: usize, width: usize, base_bits: u32, seed: u64) -> Self {
        Self::salsa_with_encoding(depth, width, base_bits, seed)
    }
}

impl CountSketch<SalsaSignedRow<LayoutCodes>> {
    /// A SALSA CS with the near-optimal encoding.
    pub fn salsa_compact(depth: usize, width: usize, base_bits: u32, seed: u64) -> Self {
        Self::salsa_with_encoding(depth, width, base_bits, seed)
    }
}

impl<S: SignedRow> FrequencyEstimator for CountSketch<S> {
    fn update(&mut self, item: u64, value: i64) {
        CountSketch::update(self, item, value);
    }

    fn batch_update(&mut self, items: &[u64]) {
        CountSketch::update_batch(self, items);
    }

    fn estimate(&self, item: u64) -> i64 {
        CountSketch::estimate(self, item)
    }

    fn size_bytes(&self) -> usize {
        CountSketch::size_bytes(self)
    }

    fn name(&self) -> String {
        "CountSketch".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn zipfish_stream(n: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                ((1.0 / u) as u64).min(universe - 1)
            })
            .collect()
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut cs = CountSketch::baseline(5, 1 << 12, 32, 1);
        for item in 0u64..10 {
            for _ in 0..(item + 1) * 3 {
                cs.update(item, 1);
            }
        }
        for item in 0u64..10 {
            assert_eq!(cs.estimate(item), ((item + 1) * 3) as i64);
        }
    }

    #[test]
    fn supports_negative_updates_and_deletions() {
        let mut cs = CountSketch::salsa(5, 1 << 10, 8, 3);
        for _ in 0..500 {
            cs.update(7, 1);
        }
        for _ in 0..200 {
            cs.update(7, -1);
        }
        assert_eq!(cs.estimate(7), 300);
    }

    #[test]
    fn heavy_hitter_estimates_are_close() {
        let stream = zipfish_stream(100_000, 10_000, 5);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut baseline = CountSketch::baseline(5, 1 << 10, 32, 7);
        let mut salsa = CountSketch::salsa(5, 1 << 12, 8, 7);
        for &item in &stream {
            baseline.update(item, 1);
            salsa.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        // The heaviest item should be estimated within a few percent by both.
        let (&heavy, &count) = truth.iter().max_by_key(|(_, &c)| c).unwrap();
        let be = baseline.estimate(heavy);
        let se = salsa.estimate(heavy);
        assert!(
            (be - count).abs() as f64 <= 0.05 * count as f64,
            "baseline {be} vs {count}"
        );
        assert!(
            (se - count).abs() as f64 <= 0.05 * count as f64,
            "salsa {se} vs {count}"
        );
    }

    #[test]
    fn salsa_cs_beats_baseline_on_mse_at_equal_memory() {
        // The headline claim for CS (Fig. 11): at equal memory, SALSA (8-bit
        // base counters, 4× the counters) has lower on-arrival error than the
        // 32-bit baseline on a skewed stream.
        let stream = zipfish_stream(200_000, 50_000, 11);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut baseline = CountSketch::baseline(5, 1 << 9, 32, 13);
        // Same memory: 4× the counters at 8 bits + 1 bit overhead ≈ within budget.
        let mut salsa = CountSketch::salsa(5, 1 << 11, 8, 13);
        assert!(salsa.size_bytes() <= baseline.size_bytes() * 9 / 8);
        let mut base_se = 0f64;
        let mut salsa_se = 0f64;
        for &item in &stream {
            let t = *truth.get(&item).unwrap_or(&0);
            let be = baseline.estimate(item) - t;
            let se = salsa.estimate(item) - t;
            base_se += (be * be) as f64;
            salsa_se += (se * se) as f64;
            baseline.update(item, 1);
            salsa.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        assert!(
            salsa_se < base_se,
            "SALSA CS on-arrival SSE {salsa_se} should beat baseline {base_se}"
        );
    }

    #[test]
    fn median_of_even_depth_works() {
        let mut cs = CountSketch::baseline(4, 256, 32, 2);
        for _ in 0..50 {
            cs.update(1, 1);
        }
        assert!((cs.estimate(1) - 50).abs() <= 2);
    }

    #[test]
    fn subtract_recovers_frequency_changes() {
        let seed = 19;
        let mut sa = CountSketch::salsa(5, 1 << 10, 8, seed);
        let mut sb = CountSketch::salsa(5, 1 << 10, 8, seed);
        // Item 1: 100 → 40 (change −60); item 2: 10 → 200 (change +190).
        for _ in 0..100 {
            sa.update(1, 1);
        }
        for _ in 0..10 {
            sa.update(2, 1);
        }
        for _ in 0..40 {
            sb.update(1, 1);
        }
        for _ in 0..200 {
            sb.update(2, 1);
        }
        let mut diff = sa.clone();
        diff.subtract(&sb);
        assert_eq!(diff.estimate(1), 60);
        assert_eq!(diff.estimate(2), -190);
    }

    #[test]
    fn absorb_sums_streams() {
        let seed = 23;
        let mut sa = CountSketch::baseline(5, 512, 32, seed);
        let mut sb = CountSketch::baseline(5, 512, 32, seed);
        for _ in 0..30 {
            sa.update(5, 1);
            sb.update(5, 2);
        }
        sa.absorb(&sb);
        assert_eq!(sa.estimate(5), 90);
    }

    #[test]
    fn merge_from_equals_single_sketch_when_counters_do_not_overflow() {
        // With 16-bit base counters and 30 000 total unit updates no
        // sign-magnitude counter can overflow (|sum| ≤ 30 000 < 2^15 − 1),
        // so merging is exactly counter-wise addition and must reproduce the
        // single sketch of the concatenated stream.  (With merges the two
        // can legitimately diverge: sign cancellation across shards changes
        // which counters overflow.)
        let seed = 29;
        let mut sa = CountSketch::salsa(5, 512, 16, seed);
        let mut sb = CountSketch::salsa(5, 512, 16, seed);
        let mut concat = CountSketch::salsa(5, 512, 16, seed);
        for &item in &zipfish_stream(15_000, 300, 41) {
            sa.update(item, 1);
            concat.update(item, 1);
        }
        for &item in &zipfish_stream(15_000, 300, 43) {
            sb.update(item, 1);
            concat.update(item, 1);
        }
        sa.merge_from(&sb);
        for item in 0..300u64 {
            assert_eq!(sa.estimate(item), concat.estimate(item), "item {item}");
        }
    }

    #[test]
    fn merge_from_preserves_row_mass_even_with_merges() {
        // Sum-merging never loses signed mass: per row, the sum over the
        // logical counters equals the signed sum of all updates hashed into
        // the row, whether the stream was sketched in one pass or sketched
        // in shards and merged — even when the narrow 8-bit counters force
        // many merge events along the way.
        let seed = 47;
        let mut sa = CountSketch::salsa(5, 256, 8, seed);
        let mut sb = CountSketch::salsa(5, 256, 8, seed);
        let mut concat = CountSketch::salsa(5, 256, 8, seed);
        for &item in &zipfish_stream(20_000, 300, 51) {
            sa.update(item, 1);
            concat.update(item, 1);
        }
        for &item in &zipfish_stream(20_000, 300, 53) {
            sb.update(item, 1);
            concat.update(item, 1);
        }
        sa.merge_from(&sb);
        assert!(
            sa.rows()
                .iter()
                .any(|r| r.counters().any(|(_, l, _)| l > 0)),
            "the 8-bit configuration should actually trigger merges"
        );
        for (merged_row, concat_row) in sa.rows().iter().zip(concat.rows().iter()) {
            let merged_mass: i64 = merged_row.counters().map(|(_, _, v)| v).sum();
            let concat_mass: i64 = concat_row.counters().map(|(_, _, v)| v).sum();
            assert_eq!(merged_mass, concat_mass);
        }
    }

    #[test]
    #[should_panic(expected = "share hash seeds")]
    fn merge_from_rejects_different_seeds() {
        let mut sa = CountSketch::salsa(3, 128, 8, 1);
        let sb = CountSketch::salsa(3, 128, 8, 2);
        sa.merge_from(&sb);
    }

    #[test]
    fn update_batch_matches_per_item_updates() {
        let mut batched = CountSketch::salsa(5, 512, 8, 3);
        let mut looped = CountSketch::salsa(5, 512, 8, 3);
        let items = zipfish_stream(10_000, 400, 21);
        for chunk in items.chunks(128) {
            batched.update_batch(chunk);
        }
        for &item in &items {
            looped.update(item, 1);
        }
        for item in 0..400u64 {
            assert_eq!(batched.estimate(item), looped.estimate(item), "item {item}");
        }
    }

    #[test]
    fn estimate_is_unbiased_over_seeds() {
        // Lemma V.4: the SALSA CS row estimate is unbiased.  Average the
        // estimate of a fixed item over many independent single-row sketches;
        // the mean should be close to the true frequency even though each row
        // is noisy and merges occur.  The stream is flat (500 items × 40) so
        // the per-row noise has bounded variance and the empirical mean
        // concentrates.
        let true_f = 40i64;
        let probe = 123u64;
        let mut sum_est = 0f64;
        let trials = 60;
        for seed in 0..trials {
            // Narrow 8-bit sketch so merges actually happen.
            let mut cs = CountSketch::salsa(1, 128, 8, seed);
            for item in 0..500u64 {
                for _ in 0..40 {
                    cs.update(item, 1);
                }
            }
            sum_est += cs.estimate(probe) as f64;
        }
        let mean = sum_est / trials as f64;
        // Per-row variance ≤ F2/w = 500·40²/128 = 6 250 (σ ≈ 79); the mean of
        // 60 trials has a standard error of ≈ 10, so a ±40 band is ≈ 4 SE.
        assert!(
            (mean - true_f as f64).abs() < 40.0,
            "mean estimate {mean} is far from the true frequency {true_f}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut cs = CountSketch::salsa(3, 128, 8, 1);
        cs.update(3, 10);
        cs.reset();
        assert_eq!(cs.estimate(3), 0);
    }
}
