//! UnivMon — the universal monitoring sketch.
//!
//! UnivMon (Liu et al., SIGCOMM'16) maintains `L = O(log u)` Count Sketches;
//! level 0 sees the full stream and level `j` sees the substream of items
//! whose sampling hash passes `j` coin flips (probability `2^{-j}`).  Each
//! level tracks its heavy hitters with a small heap.  Any G-sum
//! `Σ_x G(f_x)` in Stream-PolyLog (entropy, frequency moments, distinct
//! count, …) is estimated with the standard recursive estimator over the
//! per-level heavy hitters.
//!
//! Replacing the per-level Count Sketches with SALSA Count Sketches gives
//! "SALSA UnivMon" (Fig. 12) with the same guarantees, because SALSA CS is
//! at least as accurate as the underlying CS (Theorem V.6).

use salsa_core::compact::LayoutCodes;
use salsa_core::encoding::MergeEncoding;
use salsa_core::fixed::FixedSignedRow;
use salsa_core::merge::RowMerge;
use salsa_core::row::SalsaSignedRow;
use salsa_core::traits::SignedRow;
use salsa_hash::BobHash;

use crate::cs::CountSketch;
use crate::heavy_hitters::TopK;
use crate::helper::MergeHelper;

/// One UnivMon level: a Count Sketch plus a heap of its heavy hitters.
#[derive(Debug, Clone)]
struct Level<S: SignedRow> {
    sketch: CountSketch<S>,
    heap: TopK,
}

/// The universal sketch, generic over the Count Sketch row type.
#[derive(Debug, Clone)]
pub struct UnivMon<S: SignedRow> {
    levels: Vec<Level<S>>,
    sampler: BobHash,
    total: u64,
}

impl<S: SignedRow> UnivMon<S> {
    /// Builds a UnivMon with `num_levels` levels, a per-level heap of
    /// `heap_size` items, constructing each level's Count Sketch with
    /// `make_cs(level)`.
    pub fn new_with(
        num_levels: usize,
        heap_size: usize,
        seed: u64,
        mut make_cs: impl FnMut(usize) -> CountSketch<S>,
    ) -> Self {
        assert!(num_levels > 0, "UnivMon needs at least one level");
        let levels = (0..num_levels)
            .map(|level| Level {
                sketch: make_cs(level),
                heap: TopK::new(heap_size),
            })
            .collect();
        Self {
            levels,
            sampler: BobHash::new(seed ^ 0x5A5A_F00D_BAAD_CAFE),
            total: 0,
        }
    }

    /// Number of levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total stream volume processed so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total memory used by all levels, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.sketch.size_bytes()).sum()
    }

    /// The deepest level `item` is sampled into (level 0 always accepts).
    #[inline]
    fn deepest_level(&self, item: u64) -> usize {
        let h = self.sampler.hash_u64(item);
        let passes = h.trailing_ones() as usize;
        passes.min(self.levels.len() - 1)
    }

    /// `true` if `item` is sampled into `level`.
    #[inline]
    fn in_level(&self, item: u64, level: usize) -> bool {
        self.deepest_level(item) >= level
    }

    /// Processes the update `⟨item, value⟩` (Cash Register model).
    pub fn update(&mut self, item: u64, value: u64) {
        self.total += value;
        let deepest = self.deepest_level(item);
        for level in 0..=deepest {
            let entry = &mut self.levels[level];
            entry.sketch.update(item, value as i64);
            let est = entry.sketch.estimate(item).max(0) as u64;
            entry.heap.offer(item, est);
        }
    }

    /// Processes a batch of unit-weight updates (`⟨item, 1⟩` per item) — the
    /// sharded pipeline's hot path.
    pub fn batch_update(&mut self, items: &[u64]) {
        for &item in items {
            self.update(item, 1);
        }
    }

    /// Estimates the G-sum `Σ_x G(f_x)` with the recursive UnivMon estimator.
    ///
    /// `g` receives an estimated frequency (always ≥ 1) and returns `G(f)`.
    pub fn g_sum(&self, g: impl Fn(f64) -> f64) -> f64 {
        let top = self.levels.len() - 1;
        // Y_top = Σ_{x ∈ HH_top} G(f̂_top(x))
        let mut y = self.levels[top]
            .heap
            .items()
            .iter()
            .filter(|&&(_, est)| est > 0)
            .map(|&(_, est)| g(est as f64))
            .sum::<f64>();
        // Y_j = 2·Y_{j+1} + Σ_{x ∈ HH_j} (1 − 2·[x ∈ level j+1])·G(f̂_j(x))
        for level in (0..top).rev() {
            let mut correction = 0.0;
            for &(item, est) in &self.levels[level].heap.items() {
                if est == 0 {
                    continue;
                }
                let indicator = if self.in_level(item, level + 1) {
                    1.0
                } else {
                    0.0
                };
                correction += (1.0 - 2.0 * indicator) * g(est as f64);
            }
            y = 2.0 * y + correction;
        }
        y.max(0.0)
    }

    /// Estimates the `p`-th frequency moment `F_p = Σ_x f_x^p`.
    pub fn fp_moment(&self, p: f64) -> f64 {
        self.g_sum(|f| f.powf(p))
    }

    /// Estimates the number of distinct items (`F_0`).
    pub fn distinct(&self) -> f64 {
        self.g_sum(|f| if f >= 0.5 { 1.0 } else { 0.0 })
    }

    /// Estimates the empirical entropy of the frequency distribution,
    /// `H = log2(N) − (1/N)·Σ_x f_x·log2(f_x)`.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let flogf = self.g_sum(|f| f * f.log2());
        (n.log2() - flogf / n).max(0.0)
    }

    /// Overwrites this sketch with `src`'s contents, reusing the level
    /// sketches' buffers (the per-level heaps reuse what their containers
    /// allow).  Both sketches must have the same level count and shape.
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(
            self.levels.len(),
            src.levels.len(),
            "UnivMon level counts must match"
        );
        for (dst, src_level) in self.levels.iter_mut().zip(src.levels.iter()) {
            dst.sketch.copy_from(&src_level.sketch);
            dst.heap.copy_from(&src_level.heap);
        }
        self.sampler = src.sampler;
        self.total = src.total;
    }
}

impl<S: SignedRow + Clone> UnivMon<S> {
    /// Bytes copied when this sketch is cloned for a point-in-time snapshot:
    /// the counter storage of every level's Count Sketch plus the tracked
    /// heap entries (the sampler is a single seed and is ignored).
    pub fn clone_cost_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.sketch.clone_cost_bytes() + l.heap.len() * TopK::ENTRY_COST_BYTES)
            .sum()
    }
}

impl<S: SignedRow + RowMerge> UnivMon<S> {
    /// Counter-wise merges `other` into `self` (same seeds, level count and
    /// per-level shape enforced): afterwards this sketch summarizes the union
    /// of the two input streams.
    ///
    /// Every level's Count Sketch merges counter-wise (plain signed sums, so
    /// per-row values are identical to a sketch fed both streams — Section V;
    /// SALSA CS stays unbiased across the merge, Lemma V.4).  The level's
    /// heavy-hitter heap cannot be summed the same way: the tracked estimates
    /// were taken on-arrival against each operand's *partial* stream.  It is
    /// instead rebuilt by re-estimating the union of both heaps' tracked
    /// items against the merged level sketch, which restores the invariant
    /// that every tracked estimate reflects the full merged stream.  An item
    /// is lost only if *neither* operand tracked it — the same items a
    /// single-stream heap of the combined capacity could have evicted — so
    /// `g_sum`-class estimates (entropy, moments, distinct) stay within the
    /// estimator's usual tolerance of an unsharded run (pinned by the
    /// `univmon_properties` proptests in `salsa-pipeline`).
    pub fn merge_from(&mut self, other: &Self) {
        // ALLOC-OK: one-shot entry point; steady-state callers thread a warm
        // helper through `merge_with_helper` instead.
        let mut helper = MergeHelper::new();
        self.merge_with_helper(other, &mut helper);
    }

    /// Counter-wise merges `other` into `self` exactly like
    /// [`UnivMon::merge_from`], drawing the heap-rebuild scratch from
    /// `helper` so a warm helper makes repeated merges nearly allocation-free
    /// (the per-level heaps still insert into their tree set; everything
    /// else reuses `helper.pairs`).
    pub fn merge_with_helper(&mut self, other: &Self, helper: &mut MergeHelper) {
        assert_eq!(
            self.levels.len(),
            other.levels.len(),
            "UnivMon level counts must match"
        );
        self.total += other.total;
        for (mine, theirs) in self.levels.iter_mut().zip(other.levels.iter()) {
            mine.sketch.merge_from(&theirs.sketch);
            // Rebuild the level's heavy-hitter heap by re-estimating the
            // union of both operands' tracked items against the merged level
            // sketch (restores the invariant that every tracked estimate
            // reflects the full merged stream).  The candidate pairs live in
            // the helper's reusable buffer.
            helper.pairs.clear();
            mine.heap.copy_items_into(&mut helper.pairs);
            theirs.heap.copy_items_into(&mut helper.pairs);
            for pair in helper.pairs.iter_mut() {
                pair.1 = mine.sketch.estimate(pair.0).max(0) as u64;
            }
            mine.heap.clear();
            for &(item, est) in helper.pairs.iter() {
                if est > 0 {
                    mine.heap.offer(item, est);
                }
            }
        }
    }

    /// Counter-wise merges two sketches into a *new* one, leaving both
    /// operands untouched (same contract as [`UnivMon::merge_from`]).
    pub fn merge_into_new(&self, other: &Self) -> Self
    where
        S: Clone,
    {
        // ALLOC-OK: the allocating one-shot entry point, kept as a thin
        // wrapper over the helper-threaded merge.
        let mut merged = self.clone();
        merged.merge_from(other);
        merged
    }
}

impl UnivMon<FixedSignedRow> {
    /// The baseline UnivMon of the paper's evaluation: `num_levels` Count
    /// Sketches with `depth` rows of `width` fixed-width (32-bit) counters
    /// and a heap of `heap_size` (100 in the paper) per level.
    pub fn baseline(
        num_levels: usize,
        depth: usize,
        width: usize,
        bits: u32,
        heap_size: usize,
        seed: u64,
    ) -> Self {
        Self::new_with(num_levels, heap_size, seed, |level| {
            CountSketch::baseline(
                depth,
                width,
                bits,
                seed.wrapping_add(level as u64 * 1315423911),
            )
        })
    }
}

impl<E: MergeEncoding> UnivMon<SalsaSignedRow<E>> {
    /// SALSA UnivMon: each level's Count Sketch uses SALSA sign-magnitude
    /// rows with `base_bits`-bit counters.
    pub fn salsa_with_encoding(
        num_levels: usize,
        depth: usize,
        width: usize,
        base_bits: u32,
        heap_size: usize,
        seed: u64,
    ) -> Self {
        Self::new_with(num_levels, heap_size, seed, |level| {
            CountSketch::salsa_with_encoding(
                depth,
                width,
                base_bits,
                seed.wrapping_add(level as u64 * 1315423911),
            )
        })
    }
}

impl UnivMon<SalsaSignedRow<salsa_core::bitmap::MergeBitmap>> {
    /// SALSA UnivMon with the simple encoding (the paper's default).
    pub fn salsa(
        num_levels: usize,
        depth: usize,
        width: usize,
        base_bits: u32,
        heap_size: usize,
        seed: u64,
    ) -> Self {
        Self::salsa_with_encoding(num_levels, depth, width, base_bits, heap_size, seed)
    }
}

impl UnivMon<SalsaSignedRow<LayoutCodes>> {
    /// SALSA UnivMon with the near-optimal encoding.
    pub fn salsa_compact(
        num_levels: usize,
        depth: usize,
        width: usize,
        base_bits: u32,
        heap_size: usize,
        seed: u64,
    ) -> Self {
        Self::salsa_with_encoding(num_levels, depth, width, base_bits, heap_size, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic Zipf-ish stream with known exact statistics.
    fn stream_and_truth(n: usize, universe: u64, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut counts = vec![0u64; universe as usize];
        let mut stream = Vec::with_capacity(n);
        let mut state = seed;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            let item = ((1.0 / u.powf(0.8)) as u64).min(universe - 1);
            stream.push(item);
            counts[item as usize] += 1;
        }
        (stream, counts)
    }

    fn exact_entropy(counts: &[u64]) -> f64 {
        let n: u64 = counts.iter().sum();
        let nf = n as f64;
        let flogf: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| (c as f64) * (c as f64).log2())
            .sum();
        nf.log2() - flogf / nf
    }

    fn exact_fp(counts: &[u64], p: f64) -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| (c as f64).powf(p))
            .sum()
    }

    #[test]
    fn entropy_estimate_is_reasonable() {
        let (stream, counts) = stream_and_truth(60_000, 5_000, 7);
        let mut um = UnivMon::salsa(12, 5, 1 << 10, 8, 100, 3);
        for &item in &stream {
            um.update(item, 1);
        }
        let est = um.entropy();
        let truth = exact_entropy(&counts);
        let rel = (est - truth).abs() / truth;
        assert!(
            rel < 0.15,
            "entropy estimate {est} vs exact {truth} (rel {rel})"
        );
    }

    #[test]
    fn f2_moment_estimate_is_reasonable() {
        let (stream, counts) = stream_and_truth(60_000, 5_000, 11);
        let mut um = UnivMon::salsa(12, 5, 1 << 10, 8, 100, 5);
        for &item in &stream {
            um.update(item, 1);
        }
        let est = um.fp_moment(2.0);
        let truth = exact_fp(&counts, 2.0);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.3, "F2 estimate {est} vs exact {truth} (rel {rel})");
    }

    #[test]
    fn f1_matches_stream_volume_roughly() {
        let (stream, _) = stream_and_truth(40_000, 5_000, 13);
        let mut um = UnivMon::baseline(12, 5, 1 << 10, 32, 100, 9);
        for &item in &stream {
            um.update(item, 1);
        }
        let est = um.fp_moment(1.0);
        let rel = (est - 40_000.0).abs() / 40_000.0;
        assert!(rel < 0.35, "F1 estimate {est} (rel {rel})");
    }

    #[test]
    fn level_sampling_halves_per_level() {
        let um = UnivMon::baseline(10, 5, 256, 32, 10, 4);
        let mut per_level = [0usize; 10];
        for item in 0..100_000u64 {
            per_level[um.deepest_level(item)] += 1;
        }
        // Roughly half the items stop at level 0, a quarter at level 1, ….
        assert!((per_level[0] as f64 / 100_000.0 - 0.5).abs() < 0.02);
        assert!((per_level[1] as f64 / 100_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn total_counts_volume() {
        let mut um = UnivMon::baseline(4, 5, 128, 32, 10, 1);
        um.update(1, 5);
        um.update(2, 7);
        assert_eq!(um.total(), 12);
    }

    #[test]
    fn size_accounts_all_levels() {
        let um = UnivMon::baseline(16, 5, 256, 32, 100, 1);
        assert_eq!(um.size_bytes(), 16 * 5 * 256 * 4);
        let salsa = UnivMon::salsa(16, 5, 1024, 8, 100, 1);
        assert_eq!(salsa.size_bytes(), 16 * 5 * (1024 + 128));
    }

    #[test]
    fn merge_preserves_g_sum_estimates() {
        let (stream, counts) = stream_and_truth(60_000, 5_000, 17);
        let make = || UnivMon::salsa(12, 5, 1 << 10, 8, 100, 3);
        let mut single = make();
        for &item in &stream {
            single.update(item, 1);
        }
        // Split the stream in three, sketch each part, merge.
        let mut merged = make();
        let mut part_b = make();
        let mut part_c = make();
        for (i, &item) in stream.iter().enumerate() {
            match i % 3 {
                0 => merged.update(item, 1),
                1 => part_b.update(item, 1),
                _ => part_c.update(item, 1),
            }
        }
        merged.merge_from(&part_b);
        merged.merge_from(&part_c);
        assert_eq!(merged.total(), single.total());
        let truth = exact_entropy(&counts);
        let est = merged.entropy();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.15, "merged entropy {est} vs exact {truth} ({rel})");
        let single_est = single.entropy();
        let drift = (est - single_est).abs() / single_est;
        assert!(
            drift < 0.1,
            "merged entropy {est} vs single-stream {single_est} ({drift})"
        );
    }

    #[test]
    fn merge_into_new_leaves_operands_untouched() {
        let mut a = UnivMon::baseline(6, 4, 512, 32, 20, 5);
        let mut b = UnivMon::baseline(6, 4, 512, 32, 20, 5);
        a.update(1, 10);
        b.update(2, 20);
        let merged = a.merge_into_new(&b);
        assert_eq!(merged.total(), 30);
        assert_eq!(a.total(), 10);
        assert_eq!(b.total(), 20);
    }

    #[test]
    #[should_panic(expected = "level counts must match")]
    fn merge_level_count_mismatch_panics() {
        let mut a = UnivMon::baseline(6, 4, 512, 32, 20, 5);
        let b = UnivMon::baseline(8, 4, 512, 32, 20, 5);
        a.merge_from(&b);
    }

    #[test]
    fn batch_update_matches_unit_updates() {
        let items: Vec<u64> = (0..2_000u64).map(|i| i % 97).collect();
        let mut batched = UnivMon::baseline(6, 4, 512, 32, 20, 5);
        batched.batch_update(&items);
        let mut looped = UnivMon::baseline(6, 4, 512, 32, 20, 5);
        for &item in &items {
            looped.update(item, 1);
        }
        assert_eq!(batched.total(), looped.total());
        assert_eq!(batched.entropy(), looped.entropy());
    }

    #[test]
    fn clone_cost_covers_levels_and_heaps() {
        let mut um = UnivMon::baseline(4, 5, 128, 32, 10, 1);
        let empty_cost = um.clone_cost_bytes();
        assert_eq!(empty_cost, 4 * 5 * 128 * 4); // 32-bit counters, empty heaps
        um.update(7, 3);
        assert!(um.clone_cost_bytes() > empty_cost);
    }

    #[test]
    fn distinct_estimate_counts_each_item_once() {
        let mut um = UnivMon::salsa(12, 5, 1 << 10, 8, 100, 2);
        for item in 0..2_000u64 {
            for _ in 0..5 {
                um.update(item, 1);
            }
        }
        let est = um.distinct();
        let rel = (est - 2_000.0).abs() / 2_000.0;
        assert!(rel < 0.5, "distinct estimate {est} (rel {rel})");
    }
}
