//! On-arrival heavy-hitter tracking.
//!
//! In the Cash Register model the heavy hitters can be tracked by keeping a
//! small min-heap of the items with the largest sketch estimates: every
//! arriving item is queried and the heap updated if its estimate exceeds the
//! current minimum (Section III, "Finding Heavy Hitters").  The same
//! structure is used as the per-level heap inside UnivMon (size 100 in the
//! paper's configuration) and for the Top-k experiments (Fig. 15).

use std::collections::BTreeSet;

use salsa_hash::FxHashMap;

/// Tracks the `k` items with the largest reported estimates.
#[derive(Debug, Clone, Default)]
pub struct TopK {
    k: usize,
    estimates: FxHashMap<u64, u64>,
    ordered: BTreeSet<(u64, u64)>,
}

impl TopK {
    /// Approximate bytes copied per tracked entry when the tracker is cloned:
    /// one hash-map entry plus one ordered-set entry, both keyed by
    /// `(u64, u64)` pairs.
    pub const ENTRY_COST_BYTES: usize = 48;

    /// Creates a tracker for the top `k` items.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            estimates: FxHashMap::default(),
            ordered: BTreeSet::new(),
        }
    }

    /// Capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently tracked (≤ `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// `true` if no items are tracked yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Reports a fresh estimate for `item`; the tracker keeps it if it is
    /// (still) among the `k` largest.
    pub fn offer(&mut self, item: u64, estimate: u64) {
        if let Some(&old) = self.estimates.get(&item) {
            if estimate > old {
                self.ordered.remove(&(old, item));
                self.ordered.insert((estimate, item));
                self.estimates.insert(item, estimate);
            }
            return;
        }
        if self.estimates.len() < self.k {
            self.estimates.insert(item, estimate);
            self.ordered.insert((estimate, item));
            return;
        }
        // Full: replace the smallest tracked item if the newcomer is larger.
        let &(min_est, min_item) = self.ordered.iter().next().expect("non-empty when full");
        if estimate > min_est {
            self.ordered.remove(&(min_est, min_item));
            self.estimates.remove(&min_item);
            self.estimates.insert(item, estimate);
            self.ordered.insert((estimate, item));
        }
    }

    /// `true` if `item` is currently among the tracked top-k.
    pub fn contains(&self, item: u64) -> bool {
        self.estimates.contains_key(&item)
    }

    /// The tracked estimate of `item`, if present.
    pub fn estimate(&self, item: u64) -> Option<u64> {
        self.estimates.get(&item).copied()
    }

    /// The tracked items and their estimates, largest first.
    pub fn items(&self) -> Vec<(u64, u64)> {
        self.ordered
            .iter()
            .rev()
            .map(|&(est, item)| (item, est))
            .collect()
    }

    /// The smallest tracked estimate (the heap's current threshold).
    pub fn threshold(&self) -> u64 {
        self.ordered.iter().next().map(|&(est, _)| est).unwrap_or(0)
    }

    /// Bytes copied when the tracker is cloned for a point-in-time snapshot.
    pub fn clone_cost_bytes(&self) -> usize {
        self.len() * Self::ENTRY_COST_BYTES
    }

    /// Drops every tracked item while keeping `k` and the allocated
    /// capacity of the backing containers.
    pub fn clear(&mut self) {
        self.estimates.clear();
        self.ordered.clear();
    }

    /// Appends the tracked `(item, estimate)` pairs to `out`, largest first
    /// (the same order as [`TopK::items`]), without allocating a fresh
    /// vector when `out` already has capacity.
    pub fn copy_items_into(&self, out: &mut Vec<(u64, u64)>) {
        out.extend(self.ordered.iter().rev().map(|&(est, item)| (item, est)));
    }

    /// Rebuilds the tracker from `(item, estimate)` pairs, equivalent to
    /// clearing it and offering every pair in order.
    pub fn rebuild_from(&mut self, pairs: &[(u64, u64)]) {
        self.clear();
        for &(item, est) in pairs {
            self.offer(item, est);
        }
    }

    /// Overwrites this tracker with `src`'s contents, reusing the backing
    /// containers' nodes where the standard library allows (`clone_from` on
    /// the map and set).
    pub fn copy_from(&mut self, src: &Self) {
        self.k = src.k;
        self.estimates.clone_from(&src.estimates);
        self.ordered.clone_from(&src.ordered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_largest_k() {
        let mut topk = TopK::new(3);
        for item in 0u64..100 {
            topk.offer(item, item * 10);
        }
        let items: Vec<u64> = topk.items().iter().map(|&(i, _)| i).collect();
        assert_eq!(items, vec![99, 98, 97]);
        assert_eq!(topk.len(), 3);
    }

    #[test]
    fn updates_existing_items_in_place() {
        let mut topk = TopK::new(2);
        topk.offer(1, 10);
        topk.offer(2, 20);
        topk.offer(1, 50);
        assert_eq!(topk.estimate(1), Some(50));
        assert_eq!(topk.items(), vec![(1, 50), (2, 20)]);
    }

    #[test]
    fn ignores_smaller_estimates_for_existing_items() {
        let mut topk = TopK::new(2);
        topk.offer(1, 100);
        topk.offer(1, 10);
        assert_eq!(topk.estimate(1), Some(100));
    }

    #[test]
    fn does_not_evict_for_smaller_newcomers() {
        let mut topk = TopK::new(2);
        topk.offer(1, 100);
        topk.offer(2, 200);
        topk.offer(3, 50);
        assert!(!topk.contains(3));
        assert_eq!(topk.len(), 2);
    }

    #[test]
    fn on_arrival_workflow_finds_true_heavy_hitters() {
        // Simulate the on-arrival loop: item frequencies 1..=200, track top 10.
        let mut topk = TopK::new(10);
        let mut counts = std::collections::HashMap::new();
        let mut stream = Vec::new();
        for item in 1u64..=200 {
            for _ in 0..item {
                stream.push(item);
            }
        }
        // Deterministic shuffle.
        let mut state = 42u64;
        for i in (1..stream.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            stream.swap(i, (state >> 33) as usize % (i + 1));
        }
        for &item in &stream {
            let c = counts.entry(item).or_insert(0u64);
            *c += 1;
            topk.offer(item, *c); // exact counts stand in for sketch estimates
        }
        let found: std::collections::HashSet<u64> = topk.items().iter().map(|&(i, _)| i).collect();
        for item in 191..=200u64 {
            assert!(found.contains(&item), "missing true heavy hitter {item}");
        }
    }

    #[test]
    fn threshold_tracks_minimum() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.threshold(), 0);
        topk.offer(1, 5);
        topk.offer(2, 9);
        assert_eq!(topk.threshold(), 5);
        topk.offer(3, 7);
        assert_eq!(topk.threshold(), 7);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }
}
