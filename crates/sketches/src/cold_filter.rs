//! Cold Filter — a two-stage filtering framework for accurate heavy-part
//! measurement.
//!
//! Cold Filter (Zhou et al.) sends every item first through a small,
//! low-resolution stage-1 sketch (conservative update over 4-bit counters);
//! only the portion of an item's count exceeding the stage-1 threshold
//! reaches the accurate stage-2 sketch (a CU sketch, "CM-CU" in the original
//! paper).  Cold items therefore never pollute stage 2.
//!
//! The SALSA evaluation (Fig. 13) replaces the stage-2 CU sketch with a SALSA
//! CUS; this module is generic over the stage-2 row type so both variants
//! share all the filtering logic.

use salsa_core::bitmap::MergeBitmap;
use salsa_core::fixed::FixedRow;
use salsa_core::row::SalsaRow;
use salsa_core::traits::Row;

use crate::cus::ConservativeUpdate;
use crate::estimator::FrequencyEstimator;

/// Default stage-1 counter width (bits) used by the Cold Filter paper.
pub const STAGE1_BITS: u32 = 4;
/// Default stage-1 threshold: the capacity of a 4-bit counter.
pub const STAGE1_THRESHOLD: u64 = 15;

/// The two-stage Cold Filter, generic over the stage-2 row type.
#[derive(Debug, Clone)]
pub struct ColdFilter<R: Row> {
    stage1: ConservativeUpdate<FixedRow>,
    stage2: ConservativeUpdate<R>,
    threshold: u64,
}

impl<R: Row> ColdFilter<R> {
    /// Builds a Cold Filter from an explicit stage-1 configuration and a
    /// pre-built stage-2 sketch.
    pub fn with_stage2(
        stage1_depth: usize,
        stage1_width: usize,
        threshold: u64,
        seed: u64,
        stage2: ConservativeUpdate<R>,
    ) -> Self {
        assert!(threshold >= 1);
        Self {
            stage1: ConservativeUpdate::baseline(
                stage1_depth,
                stage1_width,
                STAGE1_BITS,
                seed ^ 0xC01D,
            ),
            stage2,
            threshold,
        }
    }

    /// The stage-1 threshold.
    #[inline]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Processes the update `⟨item, value⟩` (Cash Register model).
    pub fn update(&mut self, item: u64, value: u64) {
        let est1 = self.stage1.estimate(item);
        if est1 >= self.threshold {
            // Item is already hot: everything goes to stage 2.
            self.stage2.update(item, value);
            return;
        }
        let room = self.threshold - est1;
        if value <= room {
            self.stage1.update(item, value);
        } else {
            self.stage1.update(item, room);
            self.stage2.update(item, value - room);
        }
    }

    /// Estimates the frequency of `item`.
    pub fn estimate(&self, item: u64) -> u64 {
        let est1 = self.stage1.estimate(item);
        if est1 < self.threshold {
            est1
        } else {
            self.threshold + self.stage2.estimate(item)
        }
    }

    /// Total memory used by both stages, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.stage1.size_bytes() + self.stage2.size_bytes()
    }

    /// Immutable access to the stage-2 sketch.
    pub fn stage2(&self) -> &ConservativeUpdate<R> {
        &self.stage2
    }
}

impl ColdFilter<FixedRow> {
    /// The baseline Cold Filter: stage 2 is a CU sketch with fixed-width
    /// (32-bit) counters.
    pub fn baseline(
        stage1_depth: usize,
        stage1_width: usize,
        stage2_depth: usize,
        stage2_width: usize,
        stage2_bits: u32,
        seed: u64,
    ) -> Self {
        let stage2 = ConservativeUpdate::baseline(stage2_depth, stage2_width, stage2_bits, seed);
        Self::with_stage2(stage1_depth, stage1_width, STAGE1_THRESHOLD, seed, stage2)
    }
}

impl ColdFilter<SalsaRow<MergeBitmap>> {
    /// The SALSA Cold Filter: stage 2 is a SALSA CUS with `base_bits`-bit
    /// counters (max-merge).
    pub fn salsa(
        stage1_depth: usize,
        stage1_width: usize,
        stage2_depth: usize,
        stage2_width: usize,
        base_bits: u32,
        seed: u64,
    ) -> Self {
        let stage2 = ConservativeUpdate::salsa(stage2_depth, stage2_width, base_bits, seed);
        Self::with_stage2(stage1_depth, stage1_width, STAGE1_THRESHOLD, seed, stage2)
    }
}

impl<R: Row> FrequencyEstimator for ColdFilter<R> {
    fn update(&mut self, item: u64, value: i64) {
        debug_assert!(
            value >= 0,
            "Cold Filter operates in the Cash Register model"
        );
        ColdFilter::update(self, item, value as u64);
    }

    fn estimate(&self, item: u64) -> i64 {
        ColdFilter::estimate(self, item).min(i64::MAX as u64) as i64
    }

    fn size_bytes(&self) -> usize {
        ColdFilter::size_bytes(self)
    }

    fn name(&self) -> String {
        "ColdFilter".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn zipfish_stream(n: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                ((1.0 / u) as u64).min(universe - 1)
            })
            .collect()
    }

    #[test]
    fn cold_items_stay_in_stage_one() {
        let mut cf = ColdFilter::salsa(3, 1 << 12, 3, 1 << 10, 8, 1);
        for item in 0..100u64 {
            for _ in 0..5 {
                cf.update(item, 1);
            }
        }
        for item in 0..100u64 {
            assert_eq!(cf.estimate(item), 5);
        }
        // Nothing crossed the threshold, so stage 2 is untouched.
        assert_eq!(cf.stage2().estimate(42), 0);
    }

    #[test]
    fn hot_items_overflow_to_stage_two() {
        let mut cf = ColdFilter::salsa(3, 1 << 12, 3, 1 << 10, 8, 2);
        for _ in 0..1_000 {
            cf.update(7, 1);
        }
        assert!(cf.estimate(7) >= 1_000);
        assert!(cf.stage2().estimate(7) >= 1_000 - STAGE1_THRESHOLD);
    }

    #[test]
    fn never_underestimates() {
        let stream = zipfish_stream(50_000, 2_000, 5);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut cf = ColdFilter::salsa(3, 1 << 12, 3, 1 << 10, 8, 3);
        for &item in &stream {
            cf.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        for (&item, &count) in &truth {
            assert!(cf.estimate(item) >= count, "item {item}");
        }
    }

    #[test]
    fn salsa_stage2_beats_baseline_stage2_at_equal_memory() {
        // The Fig. 13 claim: with the same stage-2 memory, SALSA stage 2 is
        // more accurate (here: no larger total over-estimation).
        let stream = zipfish_stream(100_000, 20_000, 9);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &item in &stream {
            *truth.entry(item).or_insert(0) += 1;
        }
        let mut base = ColdFilter::baseline(3, 1 << 12, 3, 256, 32, 11);
        let mut salsa = ColdFilter::salsa(3, 1 << 12, 3, 1024, 8, 11);
        assert!(salsa.size_bytes() <= base.size_bytes() * 9 / 8);
        for &item in &stream {
            base.update(item, 1);
            salsa.update(item, 1);
        }
        let base_err: u64 = truth.iter().map(|(&i, &c)| base.estimate(i) - c).sum();
        let salsa_err: u64 = truth.iter().map(|(&i, &c)| salsa.estimate(i) - c).sum();
        assert!(
            salsa_err <= base_err,
            "SALSA Cold Filter error {salsa_err} should not exceed baseline {base_err}"
        );
    }

    #[test]
    fn weighted_updates_split_across_stages() {
        let mut cf = ColdFilter::salsa(3, 1 << 10, 3, 1 << 10, 8, 4);
        cf.update(1, 10);
        assert_eq!(cf.estimate(1), 10);
        cf.update(1, 10);
        assert!(cf.estimate(1) >= 20);
        assert!(cf.stage2().estimate(1) >= 5);
    }

    #[test]
    fn size_includes_both_stages() {
        let cf = ColdFilter::salsa(3, 1 << 12, 3, 1 << 10, 8, 1);
        let stage1_bytes = 3 * (1 << 12) * STAGE1_BITS as usize / 8;
        assert_eq!(cf.size_bytes(), stage1_bytes + cf.stage2().size_bytes());
    }
}
