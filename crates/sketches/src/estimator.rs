//! A common interface for frequency-estimating sketches.
//!
//! The evaluation harness runs many different sketches (baseline and SALSA
//! CMS/CUS/CS, Pyramid, ABC, AEE, …) through identical on-arrival loops; this
//! trait is the small common surface they all expose.  Values are signed so
//! Turnstile sketches (Count Sketch) fit the same interface; Cash-Register
//! sketches simply require non-negative updates.

/// A sketch that can ingest weighted item updates and estimate per-item
/// frequencies.
pub trait FrequencyEstimator {
    /// Processes the update `⟨item, value⟩`.
    fn update(&mut self, item: u64, value: i64);

    /// Estimates the current frequency of `item`.
    fn estimate(&self, item: u64) -> i64;

    /// Total memory used by the sketch in bytes, including any encoding
    /// overhead.
    fn size_bytes(&self) -> usize;

    /// A short human-readable name used in experiment output.
    fn name(&self) -> String {
        std::any::type_name::<Self>()
            .rsplit("::")
            .next()
            .unwrap_or("sketch")
            .to_string()
    }
}
