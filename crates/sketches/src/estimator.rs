//! A common interface for frequency-estimating sketches.
//!
//! The evaluation harness runs many different sketches (baseline and SALSA
//! CMS/CUS/CS, Pyramid, ABC, AEE, …) through identical on-arrival loops; this
//! trait is the small common surface they all expose.  Values are signed so
//! Turnstile sketches (Count Sketch) fit the same interface; Cash-Register
//! sketches simply require non-negative updates.

/// A sketch that can ingest weighted item updates and estimate per-item
/// frequencies.
pub trait FrequencyEstimator {
    /// Processes the update `⟨item, value⟩`.
    fn update(&mut self, item: u64, value: i64);

    /// Processes a batch of unit-weight updates (`⟨item, 1⟩` per item).
    ///
    /// Semantically identical to calling [`FrequencyEstimator::update`] once
    /// per item.  The provided implementation does exactly that; the
    /// CMS/CUS/CS sketches override it with monomorphized loops (row-major
    /// where the sketch's update order allows it) so a worker shard pays the
    /// virtual dispatch once per batch instead of once per item.  This is the
    /// hot path of the sharded pipeline in `salsa-pipeline`.
    fn batch_update(&mut self, items: &[u64]) {
        for &item in items {
            self.update(item, 1);
        }
    }

    /// Estimates the current frequency of `item`.
    fn estimate(&self, item: u64) -> i64;

    /// Total memory used by the sketch in bytes, including any encoding
    /// overhead.
    fn size_bytes(&self) -> usize;

    /// A short human-readable name used in experiment output.
    ///
    /// The default is the implementing type's base name with any generic
    /// parameters trimmed, so `CountMin<FixedRow>` and `CountMin<SalsaRow>`
    /// both label as `CountMin` — bench/figure labels stay stable across row
    /// backends.  (The generics must be trimmed *before* splitting on `::`:
    /// the monomorphized name `a::CountMin<b::FixedRow>` would otherwise
    /// yield `FixedRow>`.)
    fn name(&self) -> String {
        let full = std::any::type_name::<Self>();
        let base = full.split('<').next().unwrap_or(full);
        base.rsplit("::").next().unwrap_or("sketch").to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe<T>(std::marker::PhantomData<T>);

    impl<T> FrequencyEstimator for Probe<T> {
        fn update(&mut self, _item: u64, _value: i64) {}
        fn estimate(&self, _item: u64) -> i64 {
            0
        }
        fn size_bytes(&self) -> usize {
            0
        }
        // `name` left at the default on purpose — it is what this tests.
    }

    #[test]
    fn default_name_trims_generic_parameters() {
        let plain = Probe::<u32>(std::marker::PhantomData);
        assert_eq!(plain.name(), "Probe");
        // A path-qualified parameter used to leak through as `Vec<u8>>`-style
        // suffixes via rsplit("::").
        let nested = Probe::<std::vec::Vec<std::string::String>>(std::marker::PhantomData);
        assert_eq!(nested.name(), "Probe");
    }
}
