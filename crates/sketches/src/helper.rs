//! Reusable scratch space for allocation-free sketch merges.
//!
//! Merging two sketches is the hot primitive of the sharded pipeline: every
//! snapshot folds one sketch per shard into a global view.  Counter-wise row
//! merges are already allocation-free, but composite sketches (UnivMon's
//! per-level heavy-hitter heaps, `Tracked` summaries) need scratch space to
//! rebuild their auxiliary state.  [`MergeHelper`] owns that scratch: create
//! it once per handle, thread it through `merge_with_helper`, and steady-state
//! merges reuse the same buffers instead of allocating per merge.

/// Scratch buffers reused across `merge_with_helper` calls.
///
/// The buffers grow to a high-water mark on the first few merges and are
/// reused (cleared, not freed) afterwards, so a warm helper makes every
/// subsequent merge allocation-free.
#[derive(Debug, Default)]
pub struct MergeHelper {
    /// Scratch `(item, estimate)` pairs used when rebuilding heavy-hitter
    /// heaps during a merge.
    pub pairs: Vec<(u64, u64)>,
}

impl MergeHelper {
    /// Creates an empty helper; its buffers grow on first use and are
    /// retained across merges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a helper whose pair buffer can hold `capacity` entries
    /// without reallocating (e.g. `2 × k` for a top-k merge).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            pairs: Vec::with_capacity(capacity),
        }
    }

    /// Current capacity of the pair buffer (diagnostics / tests).
    pub fn pair_capacity(&self) -> usize {
        self.pairs.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_retains_capacity_across_uses() {
        let mut helper = MergeHelper::new();
        helper.pairs.extend((0..100).map(|i| (i, i)));
        let cap = helper.pair_capacity();
        helper.pairs.clear();
        assert_eq!(helper.pair_capacity(), cap);
        helper.pairs.extend((0..100).map(|i| (i, i)));
        assert_eq!(helper.pair_capacity(), cap);
    }

    #[test]
    fn with_capacity_preallocates() {
        let helper = MergeHelper::with_capacity(64);
        assert!(helper.pair_capacity() >= 64);
    }
}
