//! Distinct-count (F0) estimation via Linear Counting over sketch rows.
//!
//! Linear Counting (Whang et al.) estimates the number of distinct items
//! from the fraction `p` of counters that remain zero: `F̂0 = −w·ln p`.
//! A CMS row can be used directly; a SALSA row cannot tell exactly how many
//! *base* counters stayed zero (some were swallowed by merges), so the paper
//! uses a heuristic (Section V): among merged counters, assume zero sub-slots
//! occur at the same rate `f` as among the unmerged ones.  That heuristic is
//! implemented by [`Row::estimated_zero_base_slots`].

use salsa_core::merge::RowMerge;
use salsa_core::traits::Row;

use crate::cms::CountMin;
use crate::cus::ConservativeUpdate;

/// The Linear Counting estimate for a row with `width` slots of which
/// `zero_slots` are (estimated to be) zero.
///
/// Returns `None` when no slot is zero — the estimator saturates (the paper
/// notes Linear Counting with `w` buckets can count only up to ≈ `w·ln w`
/// distinct items, so small sketches cannot produce estimates on large
/// streams; Fig. 14 shows exactly this failure region).
pub fn linear_counting(zero_slots: f64, width: usize) -> Option<f64> {
    if width == 0 || zero_slots <= 0.0 {
        return None;
    }
    let p = (zero_slots / width as f64).min(1.0);
    if p >= 1.0 {
        return Some(0.0);
    }
    Some(-(width as f64) * p.ln())
}

/// Averages the Linear Counting estimates of several rows (e.g. all the rows
/// of a CMS).  Returns `None` if every row has saturated.
pub fn distinct_from_rows<'a, R: Row + 'a>(rows: impl IntoIterator<Item = &'a R>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for row in rows {
        if let Some(est) = linear_counting(row.estimated_zero_base_slots(), row.width()) {
            sum += est;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

impl<R: Row> CountMin<R> {
    /// Estimates the number of distinct items seen so far (Linear Counting
    /// averaged over the rows).
    pub fn estimate_distinct(&self) -> Option<f64> {
        distinct_from_rows(self.rows())
    }
}

impl<R: Row> ConservativeUpdate<R> {
    /// Estimates the number of distinct items seen so far (Linear Counting
    /// averaged over the rows).
    pub fn estimate_distinct(&self) -> Option<f64> {
        distinct_from_rows(self.rows())
    }
}

/// A stream summary that *only* counts distinct items.
///
/// Wraps a [`CountMin`] whose counters serve purely as the Linear Counting
/// occupancy map — the wrapper deliberately exposes no per-item frequency
/// surface, which is what lets it demonstrate that the `salsa-pipeline`
/// machinery accepts summaries outside the `FrequencyEstimator` family.
/// With sum-merge rows (e.g. [`FixedRow`](salsa_core::fixed::FixedRow)) the
/// counter state after a counter-wise merge is byte-identical to a single
/// unsharded run, so the sharded distinct estimate is *exactly* the
/// unsharded one (Section V).
#[derive(Debug, Clone)]
pub struct DistinctCounter<R: Row> {
    cms: CountMin<R>,
}

impl<R: Row> DistinctCounter<R> {
    /// Wraps an (empty) Count-Min sketch as a distinct counter.
    pub fn new(cms: CountMin<R>) -> Self {
        Self { cms }
    }

    /// Records one occurrence of `item`.
    pub fn update(&mut self, item: u64) {
        self.cms.update(item, 1);
    }

    /// Records a batch of occurrences.
    pub fn batch_update(&mut self, items: &[u64]) {
        self.cms.update_batch(items);
    }

    /// Estimates the number of distinct items seen so far (Linear Counting
    /// averaged over the rows); `None` once every counter is occupied.
    pub fn estimate_distinct(&self) -> Option<f64> {
        self.cms.estimate_distinct()
    }

    /// Total memory used, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.cms.size_bytes()
    }

    /// Borrows the underlying occupancy sketch.
    pub fn inner(&self) -> &CountMin<R> {
        &self.cms
    }

    /// Overwrites this counter with `src`'s contents **without allocating**
    /// (see [`CountMin::copy_from`]).
    pub fn copy_from(&mut self, src: &Self) {
        self.cms.copy_from(&src.cms);
    }
}

impl<R: Row + Clone> DistinctCounter<R> {
    /// Bytes copied when the counter is cloned for a snapshot.
    pub fn clone_cost_bytes(&self) -> usize {
        self.cms.clone_cost_bytes()
    }
}

impl<R: Row + RowMerge> DistinctCounter<R> {
    /// Counter-wise merges `other` into `self` (same seed/shape enforced);
    /// afterwards the estimate covers the union of both input streams.
    pub fn merge_from(&mut self, other: &Self) {
        self.cms.merge_from(&other.cms);
    }

    /// Counter-wise merges `other` into `self`, reusing `helper`'s scratch
    /// (already allocation-free for row merges; see
    /// [`CountMin::merge_with_helper`]).
    #[inline]
    pub fn merge_with_helper(&mut self, other: &Self, helper: &mut crate::helper::MergeHelper) {
        self.cms.merge_with_helper(&other.cms, helper);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salsa_core::prelude::*;

    #[test]
    fn empty_row_estimates_zero_distinct() {
        let row = FixedRow::new(1024, 32);
        let est = linear_counting(row.estimated_zero_base_slots(), row.width()).unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn saturated_row_gives_none() {
        assert_eq!(linear_counting(0.0, 1024), None);
        assert_eq!(linear_counting(5.0, 0), None);
    }

    #[test]
    fn baseline_cms_distinct_count_is_accurate() {
        let mut cms = CountMin::baseline(4, 1 << 14, 32, 3);
        let distinct = 4_000u64;
        for item in 0..distinct {
            // Several occurrences each; repeats must not change the estimate.
            for _ in 0..3 {
                cms.update(item, 1);
            }
        }
        let est = cms.estimate_distinct().expect("not saturated");
        let rel_err = (est - distinct as f64).abs() / distinct as f64;
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn salsa_cms_distinct_count_is_accurate_with_quarter_the_memory() {
        // SALSA rows with s = 8 have 4× the slots of a 32-bit baseline at the
        // same memory, so Linear Counting saturates later (Fig. 14).
        let mut cms = CountMin::salsa(4, 1 << 16, 8, MergeOp::Max, 3);
        let distinct = 20_000u64;
        for item in 0..distinct {
            cms.update(item, 1);
        }
        let est = cms.estimate_distinct().expect("not saturated");
        let rel_err = (est - distinct as f64).abs() / distinct as f64;
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn repeated_items_do_not_inflate_the_estimate() {
        let mut cms = CountMin::salsa(4, 1 << 14, 8, MergeOp::Max, 9);
        for item in 0..1_000u64 {
            cms.update(item, 1);
        }
        let before = cms.estimate_distinct().unwrap();
        for item in 0..1_000u64 {
            for _ in 0..20 {
                cms.update(item, 1);
            }
        }
        let after = cms.estimate_distinct().unwrap();
        // Merges may slightly move the heuristic, but the estimate must stay
        // in the same ballpark rather than scaling with the repetitions.
        assert!(
            (after - before).abs() / before < 0.25,
            "before {before}, after {after}"
        );
    }

    #[test]
    fn distinct_counter_merge_is_exact_for_sum_rows() {
        let make = || DistinctCounter::new(CountMin::baseline(4, 1 << 14, 32, 7));
        let mut whole = make();
        let mut left = make();
        let mut right = make();
        for item in 0..6_000u64 {
            whole.update(item);
            if item % 2 == 0 {
                left.update(item);
            } else {
                right.update(item);
            }
        }
        left.merge_from(&right);
        // Sum-merge rows: the merged occupancy map is byte-identical to the
        // unsharded one, so the estimates match exactly.
        assert_eq!(left.estimate_distinct(), whole.estimate_distinct());
        let est = whole.estimate_distinct().expect("not saturated");
        assert!((est - 6_000.0).abs() / 6_000.0 < 0.05);
    }

    #[test]
    fn distinct_counter_batch_matches_loop() {
        let items: Vec<u64> = (0..3_000u64).map(|i| i % 500).collect();
        let mut batched = DistinctCounter::new(CountMin::baseline(4, 1 << 12, 32, 3));
        batched.batch_update(&items);
        let mut looped = DistinctCounter::new(CountMin::baseline(4, 1 << 12, 32, 3));
        for &item in &items {
            looped.update(item);
        }
        assert_eq!(batched.estimate_distinct(), looped.estimate_distinct());
    }

    #[test]
    fn small_sketch_saturates_on_large_streams() {
        let mut cms = CountMin::baseline(4, 256, 32, 1);
        for item in 0..100_000u64 {
            cms.update(item, 1);
        }
        assert!(
            cms.estimate_distinct().is_none(),
            "small sketch should saturate"
        );
    }
}
