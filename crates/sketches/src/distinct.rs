//! Distinct-count (F0) estimation via Linear Counting over sketch rows.
//!
//! Linear Counting (Whang et al.) estimates the number of distinct items
//! from the fraction `p` of counters that remain zero: `F̂0 = −w·ln p`.
//! A CMS row can be used directly; a SALSA row cannot tell exactly how many
//! *base* counters stayed zero (some were swallowed by merges), so the paper
//! uses a heuristic (Section V): among merged counters, assume zero sub-slots
//! occur at the same rate `f` as among the unmerged ones.  That heuristic is
//! implemented by [`Row::estimated_zero_base_slots`].

use salsa_core::traits::Row;

use crate::cms::CountMin;
use crate::cus::ConservativeUpdate;

/// The Linear Counting estimate for a row with `width` slots of which
/// `zero_slots` are (estimated to be) zero.
///
/// Returns `None` when no slot is zero — the estimator saturates (the paper
/// notes Linear Counting with `w` buckets can count only up to ≈ `w·ln w`
/// distinct items, so small sketches cannot produce estimates on large
/// streams; Fig. 14 shows exactly this failure region).
pub fn linear_counting(zero_slots: f64, width: usize) -> Option<f64> {
    if width == 0 || zero_slots <= 0.0 {
        return None;
    }
    let p = (zero_slots / width as f64).min(1.0);
    if p >= 1.0 {
        return Some(0.0);
    }
    Some(-(width as f64) * p.ln())
}

/// Averages the Linear Counting estimates of several rows (e.g. all the rows
/// of a CMS).  Returns `None` if every row has saturated.
pub fn distinct_from_rows<'a, R: Row + 'a>(rows: impl IntoIterator<Item = &'a R>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for row in rows {
        if let Some(est) = linear_counting(row.estimated_zero_base_slots(), row.width()) {
            sum += est;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

impl<R: Row> CountMin<R> {
    /// Estimates the number of distinct items seen so far (Linear Counting
    /// averaged over the rows).
    pub fn estimate_distinct(&self) -> Option<f64> {
        distinct_from_rows(self.rows())
    }
}

impl<R: Row> ConservativeUpdate<R> {
    /// Estimates the number of distinct items seen so far (Linear Counting
    /// averaged over the rows).
    pub fn estimate_distinct(&self) -> Option<f64> {
        distinct_from_rows(self.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salsa_core::prelude::*;

    #[test]
    fn empty_row_estimates_zero_distinct() {
        let row = FixedRow::new(1024, 32);
        let est = linear_counting(row.estimated_zero_base_slots(), row.width()).unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn saturated_row_gives_none() {
        assert_eq!(linear_counting(0.0, 1024), None);
        assert_eq!(linear_counting(5.0, 0), None);
    }

    #[test]
    fn baseline_cms_distinct_count_is_accurate() {
        let mut cms = CountMin::baseline(4, 1 << 14, 32, 3);
        let distinct = 4_000u64;
        for item in 0..distinct {
            // Several occurrences each; repeats must not change the estimate.
            for _ in 0..3 {
                cms.update(item, 1);
            }
        }
        let est = cms.estimate_distinct().expect("not saturated");
        let rel_err = (est - distinct as f64).abs() / distinct as f64;
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn salsa_cms_distinct_count_is_accurate_with_quarter_the_memory() {
        // SALSA rows with s = 8 have 4× the slots of a 32-bit baseline at the
        // same memory, so Linear Counting saturates later (Fig. 14).
        let mut cms = CountMin::salsa(4, 1 << 16, 8, MergeOp::Max, 3);
        let distinct = 20_000u64;
        for item in 0..distinct {
            cms.update(item, 1);
        }
        let est = cms.estimate_distinct().expect("not saturated");
        let rel_err = (est - distinct as f64).abs() / distinct as f64;
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn repeated_items_do_not_inflate_the_estimate() {
        let mut cms = CountMin::salsa(4, 1 << 14, 8, MergeOp::Max, 9);
        for item in 0..1_000u64 {
            cms.update(item, 1);
        }
        let before = cms.estimate_distinct().unwrap();
        for item in 0..1_000u64 {
            for _ in 0..20 {
                cms.update(item, 1);
            }
        }
        let after = cms.estimate_distinct().unwrap();
        // Merges may slightly move the heuristic, but the estimate must stay
        // in the same ballpark rather than scaling with the repetitions.
        assert!(
            (after - before).abs() / before < 0.25,
            "before {before}, after {after}"
        );
    }

    #[test]
    fn small_sketch_saturates_on_large_streams() {
        let mut cms = CountMin::baseline(4, 256, 32, 1);
        for item in 0..100_000u64 {
            cms.update(item, 1);
        }
        assert!(
            cms.estimate_distinct().is_none(),
            "small sketch should saturate"
        );
    }
}
