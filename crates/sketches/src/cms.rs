//! The Count-Min Sketch (CMS) and its SALSA / Tango variants.
//!
//! CMS (Cormode & Muthukrishnan) keeps `d × w` counters and `d` hash
//! functions; an update adds the value to one counter per row and a query
//! returns the minimum of the item's counters, which over-estimates the true
//! frequency in the Strict Turnstile model.
//!
//! The struct is generic over the row type: plugging in
//! [`FixedRow`] gives the vanilla sketch,
//! [`SalsaRow`] the SALSA CMS (Theorems V.1/V.2),
//! and [`TangoRow`] the Tango CMS.

use salsa_core::compact::LayoutCodes;
use salsa_core::encoding::MergeEncoding;
use salsa_core::fixed::FixedRow;
use salsa_core::merge::RowMerge;
use salsa_core::row::SalsaRow;
use salsa_core::tango::TangoRow;
use salsa_core::traits::{MergeOp, Row};
use salsa_hash::RowHashers;

use crate::estimator::FrequencyEstimator;
use crate::helper::MergeHelper;

/// A Count-Min Sketch over an arbitrary row type.
#[derive(Debug, Clone)]
pub struct CountMin<R: Row> {
    rows: Vec<R>,
    hashers: RowHashers,
    seed: u64,
    /// Scratch space for per-batch buckets, so the batched hot path does not
    /// pay an allocation per batch (cf. the CUS per-update scratch).
    scratch: Vec<usize>,
}

impl<R: Row> CountMin<R> {
    /// Builds a sketch from pre-constructed rows (all rows must have the same
    /// width) and a hash seed.
    pub fn from_rows(rows: Vec<R>, seed: u64) -> Self {
        assert!(!rows.is_empty(), "a sketch needs at least one row");
        let width = rows[0].width();
        assert!(
            rows.iter().all(|r| r.width() == width),
            "all rows must have the same width"
        );
        let hashers = RowHashers::new(rows.len(), width, seed);
        Self {
            rows,
            hashers,
            seed,
            scratch: Vec::new(),
        }
    }

    /// The hash seed the sketch was built with.  Two sketches can only be
    /// combined counter-wise when their seeds (and shapes) are equal.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of rows (`d`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Counters per row (`w`, in base-counter units).
    #[inline]
    pub fn width(&self) -> usize {
        self.hashers.width()
    }

    /// Immutable access to the rows (used by distinct-count estimation and
    /// the experiment harness).
    pub fn rows(&self) -> &[R] {
        &self.rows
    }

    /// Mutable access to the rows (used by estimator integrations).
    pub fn rows_mut(&mut self) -> &mut [R] {
        &mut self.rows
    }

    /// The hash family shared by this sketch.
    pub fn hashers(&self) -> &RowHashers {
        &self.hashers
    }

    /// Processes the update `⟨item, value⟩` (Cash Register / Strict
    /// Turnstile: `value ≥ 0`).
    #[inline]
    pub fn update(&mut self, item: u64, value: u64) {
        for (row_idx, row) in self.rows.iter_mut().enumerate() {
            let bucket = self.hashers.bucket(row_idx, item);
            row.add(bucket, value);
        }
    }

    /// Processes a batch of unit-weight updates row-major: every item of the
    /// batch is applied to row 0, then to row 1, and so on.
    ///
    /// CMS updates are independent across rows, so reordering them is exact;
    /// the row-major order keeps one row's counters (and one hash function)
    /// hot in cache across the whole batch, which is what makes this the
    /// pipeline's fast path.
    pub fn update_batch(&mut self, items: &[u64]) {
        let mut buckets = std::mem::take(&mut self.scratch);
        let hashers = &self.hashers;
        for (row_idx, row) in self.rows.iter_mut().enumerate() {
            buckets.clear();
            buckets.extend(items.iter().map(|&item| hashers.bucket(row_idx, item)));
            row.add_unit_batch(&buckets);
        }
        self.scratch = buckets;
    }

    /// Estimates the frequency of `item` (minimum over the item's counters).
    #[inline]
    pub fn estimate(&self, item: u64) -> u64 {
        let mut est = u64::MAX;
        for (row_idx, row) in self.rows.iter().enumerate() {
            let bucket = self.hashers.bucket(row_idx, item);
            est = est.min(row.read(bucket));
        }
        est
    }

    /// Total memory used by the sketch, including encoding overhead.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(Row::size_bytes).sum()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.rows.iter_mut().for_each(Row::reset);
    }

    /// Overwrites this sketch with `src`'s contents **without allocating**:
    /// the buffer-reusing counterpart of `Clone`, used to refresh a warm
    /// snapshot buffer in place.  Both sketches must share seed and shape.
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(self.seed, src.seed, "sketches must share hash seeds");
        assert_eq!(self.depth(), src.depth(), "sketch depths must match");
        assert_eq!(self.width(), src.width(), "sketch widths must match");
        for (dst, src_row) in self.rows.iter_mut().zip(src.rows.iter()) {
            dst.copy_from(src_row);
        }
    }
}

impl<R: Row + Clone> CountMin<R> {
    /// Bytes copied when this sketch is cloned for a point-in-time snapshot:
    /// every row's counter storage + encoding, plus the batch scratch buffer
    /// (the hashers are a handful of seeds and are ignored).  The live-query
    /// pipeline uses this to account for per-snapshot copy cost.
    pub fn clone_cost_bytes(&self) -> usize {
        self.rows.iter().map(Row::clone_cost_bytes).sum::<usize>()
            + self.scratch.len() * std::mem::size_of::<usize>()
    }
}

impl<R: Row + RowMerge> CountMin<R> {
    /// Absorbs another sketch built with the same seed and dimensions,
    /// producing the sketch of the union stream (`s(A ∪ B) = s(A) + s(B)`).
    pub fn absorb(&mut self, other: &Self) {
        assert_eq!(self.depth(), other.depth(), "sketch depths must match");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            a.absorb(b);
        }
    }

    /// Counter-wise merges `other` into `self` (Section V): afterwards this
    /// sketch summarizes the union of the two input streams.
    ///
    /// Unlike [`CountMin::absorb`], which only checks depths, this enforces
    /// the full contract the paper's merge results rely on — the operands
    /// must have been built with the *same hash functions* over the *same
    /// shape* — by asserting equal seeds, depths and widths.  The sharded
    /// pipeline uses this to fold per-shard sketches into the global view.
    ///
    /// With sum-merge rows the merged sketch's estimates are identical to
    /// the sketch of the concatenated stream; with max-merge rows they are a
    /// (never-underestimating) over-approximation.
    pub fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "sketches must share hash seeds to merge"
        );
        assert_eq!(self.depth(), other.depth(), "sketch depths must match");
        assert_eq!(self.width(), other.width(), "sketch widths must match");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            a.absorb(b);
        }
    }

    /// Counter-wise merges two sketches into a *new* one, leaving both
    /// operands untouched: `merge_into_new(a, b) = s(A ∪ B)`.  Same
    /// seed/shape contract as [`CountMin::merge_from`].  This is the
    /// snapshot-assembly primitive of the live-query pipeline, which merges
    /// per-shard sketch clones without mutating shard state.
    pub fn merge_into_new(&self, other: &Self) -> Self
    where
        R: Clone,
    {
        // ALLOC-OK: this is the *allocating* entry point, kept as a thin
        // wrapper around the allocation-free merge for one-shot callers.
        let mut merged = self.clone();
        merged.merge_from(other);
        merged
    }

    /// Counter-wise merges `other` into `self`, reusing the scratch space of
    /// `helper` so the merge allocates nothing.  CMS row merges are already
    /// allocation-free, so the helper is unused here; it exists so every
    /// sketch exposes the same helper-threaded merge entry point.
    #[inline]
    pub fn merge_with_helper(&mut self, other: &Self, _helper: &mut MergeHelper) {
        self.merge_from(other);
    }

    /// Subtracts another sketch built with the same seed and dimensions.
    ///
    /// Valid in the Strict Turnstile model when the subtracted stream is a
    /// subset of this one (`B ⊆ A`), as discussed in Section V.
    pub fn subtract(&mut self, other: &Self) {
        assert_eq!(self.depth(), other.depth(), "sketch depths must match");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            a.subtract(b);
        }
    }
}

impl CountMin<FixedRow> {
    /// The paper's *Baseline* CMS: `depth × width` fixed-width counters
    /// (32-bit unless stated otherwise).
    pub fn baseline(depth: usize, width: usize, bits: u32, seed: u64) -> Self {
        Self::from_rows(
            (0..depth).map(|_| FixedRow::new(width, bits)).collect(),
            seed,
        )
    }
}

impl<E: MergeEncoding> CountMin<SalsaRow<E>> {
    /// A SALSA CMS with an explicit merge encoding (simple or compact).
    pub fn salsa_with_encoding(
        depth: usize,
        width: usize,
        base_bits: u32,
        merge_op: MergeOp,
        seed: u64,
    ) -> Self {
        Self::from_rows(
            (0..depth)
                .map(|_| SalsaRow::<E>::new(width, base_bits, merge_op))
                .collect(),
            seed,
        )
    }
}

impl CountMin<SalsaRow<salsa_core::bitmap::MergeBitmap>> {
    /// A SALSA CMS with the simple (1 bit/counter) encoding — the paper's
    /// default configuration.
    pub fn salsa(depth: usize, width: usize, base_bits: u32, merge_op: MergeOp, seed: u64) -> Self {
        Self::salsa_with_encoding(depth, width, base_bits, merge_op, seed)
    }
}

impl CountMin<SalsaRow<LayoutCodes>> {
    /// A SALSA CMS with the near-optimal (≤0.594 bits/counter) encoding.
    pub fn salsa_compact(
        depth: usize,
        width: usize,
        base_bits: u32,
        merge_op: MergeOp,
        seed: u64,
    ) -> Self {
        Self::salsa_with_encoding(depth, width, base_bits, merge_op, seed)
    }
}

impl CountMin<TangoRow> {
    /// A Tango CMS (fine-grained merging).
    pub fn tango(depth: usize, width: usize, base_bits: u32, merge_op: MergeOp, seed: u64) -> Self {
        Self::from_rows(
            (0..depth)
                .map(|_| TangoRow::new(width, base_bits, merge_op))
                .collect(),
            seed,
        )
    }
}

impl<R: Row> FrequencyEstimator for CountMin<R> {
    fn update(&mut self, item: u64, value: i64) {
        debug_assert!(value >= 0, "CMS operates on non-negative updates");
        CountMin::update(self, item, value as u64);
    }

    fn batch_update(&mut self, items: &[u64]) {
        CountMin::update_batch(self, items);
    }

    fn estimate(&self, item: u64) -> i64 {
        CountMin::estimate(self, item).min(i64::MAX as u64) as i64
    }

    fn size_bytes(&self) -> usize {
        CountMin::size_bytes(self)
    }

    fn name(&self) -> String {
        "CountMin".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_never_underestimates() {
        let mut sketch = CountMin::baseline(4, 256, 32, 1);
        for item in 0u64..1000 {
            sketch.update(item % 50, 1);
        }
        for item in 0u64..50 {
            assert!(sketch.estimate(item) >= 20);
        }
        assert_eq!(sketch.estimate(12345), sketch.estimate(12345)); // deterministic
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut sketch = CountMin::baseline(4, 1 << 12, 32, 7);
        for item in 0u64..10 {
            for _ in 0..=item {
                sketch.update(item, 1);
            }
        }
        // With 4096 counters and 10 items, collisions across all 4 rows are
        // essentially impossible.
        for item in 0u64..10 {
            assert_eq!(sketch.estimate(item), item + 1);
        }
    }

    #[test]
    fn salsa_cms_never_underestimates() {
        let mut sketch = CountMin::salsa(4, 256, 8, MergeOp::Max, 3);
        let mut truth = std::collections::HashMap::new();
        let mut state = 5u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (state >> 33) % 200;
            sketch.update(item, 1);
            *truth.entry(item).or_insert(0u64) += 1;
        }
        for (&item, &count) in &truth {
            assert!(
                sketch.estimate(item) >= count,
                "item {item}: estimate {} < truth {count}",
                sketch.estimate(item)
            );
        }
    }

    #[test]
    fn weighted_updates_accumulate() {
        let mut sketch = CountMin::salsa(4, 512, 8, MergeOp::Sum, 11);
        sketch.update(42, 1_000_000);
        sketch.update(42, 500_000);
        assert!(sketch.estimate(42) >= 1_500_000);
    }

    #[test]
    fn size_bytes_matches_configuration() {
        let baseline = CountMin::baseline(4, 1 << 17, 32, 1);
        assert_eq!(baseline.size_bytes(), 4 * (1 << 17) * 4); // 2 MiB
        let salsa = CountMin::salsa(4, 1 << 19, 8, MergeOp::Max, 1);
        // 8 data bits + 1 merge bit per counter.
        assert_eq!(salsa.size_bytes(), 4 * ((1 << 19) + (1 << 19) / 8));
    }

    #[test]
    fn salsa_dominance_over_underlying_wide_cms() {
        // Theorem V.1/V.2: f_x ≤ f̂_SALSA ≤ f̂ of the underlying CMS whose
        // counters are as wide as SALSA's largest counter.  We verify the
        // weaker empirical consequence on a skewed stream: the SALSA estimate
        // with 4× the counters is never *worse* than the 32-bit baseline with
        // the same memory, for items that did not force large merges.
        let depth = 4;
        let seed = 9;
        let mut baseline = CountMin::baseline(depth, 256, 32, seed);
        let mut salsa = CountMin::salsa(depth, 1024, 8, MergeOp::Max, seed);
        let mut truth = std::collections::HashMap::new();
        let mut state = 77u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Zipf-ish: item = floor(1/u) capped.
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-9);
            let item = ((1.0 / u) as u64).min(5_000);
            baseline.update(item, 1);
            salsa.update(item, 1);
            *truth.entry(item).or_insert(0u64) += 1;
        }
        let mut salsa_err = 0f64;
        let mut base_err = 0f64;
        for (&item, &count) in &truth {
            salsa_err += (salsa.estimate(item) - count) as f64;
            base_err += (baseline.estimate(item) - count) as f64;
        }
        assert!(
            salsa_err <= base_err,
            "SALSA total over-estimation {salsa_err} should not exceed baseline {base_err}"
        );
    }

    #[test]
    fn tango_is_at_least_as_tight_as_salsa() {
        let seed = 21;
        let mut tango = CountMin::tango(4, 512, 8, MergeOp::Max, seed);
        let mut salsa = CountMin::salsa(4, 512, 8, MergeOp::Max, seed);
        let mut state = 3u64;
        for _ in 0..100_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (state >> 33) % 2_000;
            tango.update(item, 1);
            salsa.update(item, 1);
        }
        for item in 0..2_000u64 {
            assert!(
                tango.estimate(item) <= salsa.estimate(item),
                "item {item}: Tango {} > SALSA {}",
                tango.estimate(item),
                salsa.estimate(item)
            );
        }
    }

    #[test]
    fn absorb_equals_union_stream() {
        let seed = 4;
        let mut sa = CountMin::salsa(3, 256, 8, MergeOp::Sum, seed);
        let mut sb = CountMin::salsa(3, 256, 8, MergeOp::Sum, seed);
        let mut sab = CountMin::salsa(3, 256, 8, MergeOp::Sum, seed);
        for item in 0u64..300 {
            sa.update(item, 2);
            sab.update(item, 2);
        }
        for item in 200u64..500 {
            sb.update(item, 5);
            sab.update(item, 5);
        }
        sa.absorb(&sb);
        for item in (0u64..500).step_by(7) {
            // The absorbed sketch over-estimates the union stream but is
            // never below the directly-built union sketch's lower bound
            // (the true union frequency).
            let direct = sab.estimate(item);
            let merged = sa.estimate(item);
            assert!(
                merged >= direct.min(7),
                "item {item}: merged {merged} direct {direct}"
            );
        }
    }

    #[test]
    fn update_batch_matches_per_item_updates() {
        let mut batched = CountMin::salsa(4, 256, 8, MergeOp::Sum, 9);
        let mut looped = CountMin::salsa(4, 256, 8, MergeOp::Sum, 9);
        let mut state = 1u64;
        let items: Vec<u64> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) % 500
            })
            .collect();
        for chunk in items.chunks(256) {
            batched.update_batch(chunk);
        }
        for &item in &items {
            looped.update(item, 1);
        }
        for item in 0..500u64 {
            assert_eq!(batched.estimate(item), looped.estimate(item), "item {item}");
        }
    }

    #[test]
    fn merge_from_of_sum_sketches_equals_concatenated_stream() {
        let seed = 13;
        let mut sa = CountMin::salsa(3, 128, 8, MergeOp::Sum, seed);
        let mut sb = CountMin::salsa(3, 128, 8, MergeOp::Sum, seed);
        let mut concat = CountMin::salsa(3, 128, 8, MergeOp::Sum, seed);
        for item in 0u64..400 {
            sa.update(item, item % 90);
            concat.update(item, item % 90);
        }
        for item in 100u64..500 {
            sb.update(item, 3);
            concat.update(item, 3);
        }
        sa.merge_from(&sb);
        for item in 0u64..500 {
            assert_eq!(sa.estimate(item), concat.estimate(item), "item {item}");
        }
    }

    #[test]
    fn merge_into_new_leaves_operands_untouched() {
        let seed = 29;
        let mut sa = CountMin::salsa(3, 128, 8, MergeOp::Sum, seed);
        let mut sb = CountMin::salsa(3, 128, 8, MergeOp::Sum, seed);
        for item in 0u64..200 {
            sa.update(item, 2);
            sb.update(item + 100, 3);
        }
        let before_a: Vec<u64> = (0..300).map(|i| sa.estimate(i)).collect();
        let before_b: Vec<u64> = (0..300).map(|i| sb.estimate(i)).collect();
        let merged = sa.merge_into_new(&sb);
        let mut reference = sa.clone();
        reference.merge_from(&sb);
        for item in 0u64..300 {
            assert_eq!(merged.estimate(item), reference.estimate(item));
            assert_eq!(sa.estimate(item), before_a[item as usize]);
            assert_eq!(sb.estimate(item), before_b[item as usize]);
        }
    }

    #[test]
    fn clone_cost_covers_counter_storage() {
        let mut sketch = CountMin::salsa(4, 512, 8, MergeOp::Sum, 3);
        assert!(sketch.clone_cost_bytes() >= sketch.size_bytes());
        // After a batched update the scratch buffer is accounted for too.
        sketch.update_batch(&[1, 2, 3, 4]);
        assert!(sketch.clone_cost_bytes() >= sketch.size_bytes());
    }

    #[test]
    #[should_panic(expected = "share hash seeds")]
    fn merge_from_rejects_different_seeds() {
        let mut sa = CountMin::salsa(3, 128, 8, MergeOp::Sum, 1);
        let sb = CountMin::salsa(3, 128, 8, MergeOp::Sum, 2);
        sa.merge_from(&sb);
    }

    #[test]
    fn reset_restores_empty_sketch() {
        let mut sketch = CountMin::salsa(2, 128, 8, MergeOp::Max, 5);
        sketch.update(7, 100_000);
        sketch.reset();
        assert_eq!(sketch.estimate(7), 0);
    }

    #[test]
    fn frequency_estimator_trait_is_usable() {
        let mut sketch: Box<dyn FrequencyEstimator> =
            Box::new(CountMin::salsa(4, 256, 8, MergeOp::Max, 2));
        sketch.update(9, 3);
        assert!(sketch.estimate(9) >= 3);
        assert_eq!(sketch.name(), "CountMin");
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn mismatched_row_widths_panic() {
        let rows = vec![FixedRow::new(128, 32), FixedRow::new(256, 32)];
        let _ = CountMin::from_rows(rows, 1);
    }
}
