//! Helpers to size sketches for a memory budget.
//!
//! The paper's accuracy-versus-memory plots sweep the *total allocated
//! memory* (including encoding overhead) and require row widths to be powers
//! of two.  These helpers compute the widest power-of-two row that fits a
//! byte budget given the per-counter cost.

/// Returns the largest power-of-two row width such that `depth` rows of
/// `bits_per_counter`-bit counters (plus `overhead_bits_per_counter` of
/// encoding overhead per counter) fit within `budget_bytes`.
///
/// Returns at least 2 so degenerate budgets still produce a usable sketch.
pub fn width_for_budget_bits(
    budget_bytes: usize,
    depth: usize,
    bits_per_counter: u32,
    overhead_bits_per_counter: f64,
) -> usize {
    assert!(depth > 0);
    let budget_bits = budget_bytes as f64 * 8.0;
    let per_counter = bits_per_counter as f64 + overhead_bits_per_counter;
    let max_counters_per_row = budget_bits / (depth as f64 * per_counter);
    let mut width = 2usize;
    while (width * 2) as f64 <= max_counters_per_row {
        width *= 2;
    }
    width
}

/// [`width_for_budget_bits`] with no encoding overhead — the baseline
/// (fixed-width counter) case.
pub fn width_for_budget(budget_bytes: usize, depth: usize, bits_per_counter: u32) -> usize {
    width_for_budget_bits(budget_bytes, depth, bits_per_counter, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_configuration() {
        // Fig. 4: the 2 MB baseline CMS uses w = 2^17 32-bit counters in each
        // of 4 rows: 4 × 2^17 × 4 bytes = 2 MiB.
        assert_eq!(width_for_budget(2 << 20, 4, 32), 1 << 17);
    }

    #[test]
    fn salsa_with_overhead_fits_fewer_counters_than_raw() {
        // SALSA with s = 8 pays 1 extra bit per counter, so at some budgets
        // it ends up with the same power-of-two width as the raw 8-bit row,
        // and never with more.
        let raw = width_for_budget(1 << 20, 4, 8);
        let salsa = width_for_budget_bits(1 << 20, 4, 8, 1.0);
        assert!(salsa <= raw);
        // But always at least 4× the number of 32-bit baseline counters.
        let baseline = width_for_budget(1 << 20, 4, 32);
        assert!(salsa >= baseline * 2);
    }

    #[test]
    fn widths_are_powers_of_two_and_fit() {
        for budget in [4 << 10, 64 << 10, 1 << 20, 8 << 20] {
            for (bits, ovh) in [(32u32, 0.0), (8, 1.0), (8, 0.594)] {
                let w = width_for_budget_bits(budget, 4, bits, ovh);
                assert!(w.is_power_of_two());
                let used_bits = 4.0 * w as f64 * (bits as f64 + ovh);
                assert!(used_bits <= budget as f64 * 8.0, "budget exceeded");
            }
        }
    }

    #[test]
    fn tiny_budget_still_returns_a_row() {
        assert_eq!(width_for_budget(1, 4, 32), 2);
    }
}
