//! Property-based tests of sketch-level merging (`merge_from`).
//!
//! Section V of the paper: sketches built with the same hash functions can
//! be combined counter-wise into a sketch of the union stream.  These tests
//! pin down, over arbitrary streams and across **both merge encodings**
//! (simple merge bits and compact layout codes), what the combined sketch
//! guarantees relative to a single sketch fed the concatenated stream:
//!
//! * **CMS, sum-merge**: merging is *lossless* — the merged sketch's
//!   estimates equal the concatenated-stream sketch's estimates exactly
//!   (sum-merge counters always hold their block's exact total, so the
//!   final levels and values only depend on those totals);
//! * **CMS, max-merge**: the merged sketch never under-estimates the union
//!   stream and dominates both operands (merging sums counters, which
//!   over-approximates under max-merge);
//! * **CUS** (max-merge, Theorem V.3): the merged sketch never
//!   under-estimates the union stream and stays upper-bounded by the merged
//!   CMS of the same configuration;
//! * **Count Sketch** (signed, sum-merge): while no counter overflows,
//!   merging equals the concatenated-stream sketch exactly; and merging
//!   always preserves each row's signed mass even once merges occur.

use proptest::prelude::*;
use salsa_sketches::prelude::*;

/// An arbitrary cash-register stream over a small universe, so collisions
/// and merge events actually happen in narrow sketches.
fn stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..200, 1u64..60), 1..250)
}

/// Exact frequencies of a weighted stream.
fn exact(updates: &[(u64, u64)]) -> std::collections::HashMap<u64, u64> {
    let mut m = std::collections::HashMap::new();
    for &(item, weight) in updates {
        *m.entry(item).or_insert(0) += weight;
    }
    m
}

/// Union of the exact frequencies of two streams.
fn exact_union(a: &[(u64, u64)], b: &[(u64, u64)]) -> std::collections::HashMap<u64, u64> {
    let mut m = exact(a);
    for (item, weight) in exact(b) {
        *m.entry(item).or_insert(0) += weight;
    }
    m
}

/// Checks the sum-merge CMS equality property for one merge encoding.
fn check_cms_sum_merge_is_lossless<E: MergeEncoding>(
    a: &[(u64, u64)],
    b: &[(u64, u64)],
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut sa = CountMin::<SalsaRow<E>>::salsa_with_encoding(3, 64, 8, MergeOp::Sum, seed);
    let mut sb = CountMin::<SalsaRow<E>>::salsa_with_encoding(3, 64, 8, MergeOp::Sum, seed);
    let mut concat = CountMin::<SalsaRow<E>>::salsa_with_encoding(3, 64, 8, MergeOp::Sum, seed);
    for &(item, weight) in a {
        sa.update(item, weight);
        concat.update(item, weight);
    }
    for &(item, weight) in b {
        sb.update(item, weight);
        concat.update(item, weight);
    }
    sa.merge_from(&sb);
    for item in 0..200u64 {
        prop_assert_eq!(sa.estimate(item), concat.estimate(item), "item {}", item);
    }
    Ok(())
}

/// Checks the max-merge CMS dominance properties for one merge encoding.
fn check_cms_max_merge_dominates<E: MergeEncoding>(
    a: &[(u64, u64)],
    b: &[(u64, u64)],
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut sa = CountMin::<SalsaRow<E>>::salsa_with_encoding(3, 64, 8, MergeOp::Max, seed);
    let mut sb = CountMin::<SalsaRow<E>>::salsa_with_encoding(3, 64, 8, MergeOp::Max, seed);
    for &(item, weight) in a {
        sa.update(item, weight);
    }
    for &(item, weight) in b {
        sb.update(item, weight);
    }
    let mut merged = sa.clone();
    merged.merge_from(&sb);
    let truth = exact_union(a, b);
    for (&item, &count) in &truth {
        prop_assert!(merged.estimate(item) >= count, "item {} truth", item);
    }
    for item in 0..200u64 {
        prop_assert!(
            merged.estimate(item) >= sa.estimate(item),
            "item {} vs a",
            item
        );
        prop_assert!(
            merged.estimate(item) >= sb.estimate(item),
            "item {} vs b",
            item
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cms_sum_merge_equals_concatenated_stream_simple_encoding(
        a in stream(), b in stream(), seed in 0u64..500
    ) {
        check_cms_sum_merge_is_lossless::<MergeBitmap>(&a, &b, seed)?;
    }

    #[test]
    fn cms_sum_merge_equals_concatenated_stream_compact_encoding(
        a in stream(), b in stream(), seed in 0u64..500
    ) {
        check_cms_sum_merge_is_lossless::<LayoutCodes>(&a, &b, seed)?;
    }

    #[test]
    fn cms_max_merge_dominates_simple_encoding(
        a in stream(), b in stream(), seed in 0u64..500
    ) {
        check_cms_max_merge_dominates::<MergeBitmap>(&a, &b, seed)?;
    }

    #[test]
    fn cms_max_merge_dominates_compact_encoding(
        a in stream(), b in stream(), seed in 0u64..500
    ) {
        check_cms_max_merge_dominates::<LayoutCodes>(&a, &b, seed)?;
    }

    #[test]
    fn cus_merge_never_underestimates_and_stays_below_merged_cms(
        a in stream(), b in stream(), seed in 0u64..500
    ) {
        // Same streams through CUS and CMS shards sharing seeds: the merged
        // CUS must still never under-estimate the union stream, and each
        // estimate stays upper-bounded by the merged CMS (CUS counters are
        // point-wise ≤ CMS counters on every shard, and merging sums them).
        let mut cus_a = ConservativeUpdate::salsa(3, 64, 8, seed);
        let mut cus_b = ConservativeUpdate::salsa(3, 64, 8, seed);
        let mut cms_a = CountMin::salsa(3, 64, 8, MergeOp::Max, seed);
        let mut cms_b = CountMin::salsa(3, 64, 8, MergeOp::Max, seed);
        for &(item, weight) in &a {
            cus_a.update(item, weight);
            cms_a.update(item, weight);
        }
        for &(item, weight) in &b {
            cus_b.update(item, weight);
            cms_b.update(item, weight);
        }
        cus_a.merge_from(&cus_b);
        cms_a.merge_from(&cms_b);
        for (&item, &count) in &exact_union(&a, &b) {
            prop_assert!(cus_a.estimate(item) >= count, "item {} truth", item);
            prop_assert!(
                cus_a.estimate(item) <= cms_a.estimate(item),
                "item {} CUS above CMS", item
            );
        }
    }

    #[test]
    fn count_sketch_merge_equals_concatenated_stream_without_overflow(
        a in prop::collection::vec(0u64..200, 1..300),
        b in prop::collection::vec(0u64..200, 1..300),
        seed in 0u64..500
    ) {
        // ≤ 600 unit updates in total and 16-bit base counters: no
        // sign-magnitude counter can overflow (|sum| ≤ 600 < 2^15 − 1), so
        // merging is exactly counter-wise addition in both encodings.
        let mut simple_a = CountSketch::<SalsaSignedRow<MergeBitmap>>::salsa_with_encoding(3, 64, 16, seed);
        let mut simple_b = CountSketch::<SalsaSignedRow<MergeBitmap>>::salsa_with_encoding(3, 64, 16, seed);
        let mut simple_cat = CountSketch::<SalsaSignedRow<MergeBitmap>>::salsa_with_encoding(3, 64, 16, seed);
        let mut compact_a = CountSketch::<SalsaSignedRow<LayoutCodes>>::salsa_with_encoding(3, 64, 16, seed);
        let mut compact_b = CountSketch::<SalsaSignedRow<LayoutCodes>>::salsa_with_encoding(3, 64, 16, seed);
        let mut compact_cat = CountSketch::<SalsaSignedRow<LayoutCodes>>::salsa_with_encoding(3, 64, 16, seed);
        for &item in &a {
            simple_a.update(item, 1);
            simple_cat.update(item, 1);
            compact_a.update(item, 1);
            compact_cat.update(item, 1);
        }
        for &item in &b {
            simple_b.update(item, 1);
            simple_cat.update(item, 1);
            compact_b.update(item, 1);
            compact_cat.update(item, 1);
        }
        simple_a.merge_from(&simple_b);
        compact_a.merge_from(&compact_b);
        for item in 0..200u64 {
            prop_assert_eq!(simple_a.estimate(item), simple_cat.estimate(item), "simple item {}", item);
            prop_assert_eq!(compact_a.estimate(item), compact_cat.estimate(item), "compact item {}", item);
        }
    }

    #[test]
    fn count_sketch_merge_preserves_row_mass_with_overflows(
        a in prop::collection::vec(0u64..50, 50..400),
        b in prop::collection::vec(0u64..50, 50..400),
        seed in 0u64..500
    ) {
        // Narrow 8-bit counters over a tiny universe force merge events;
        // sum-merging still never loses signed mass, so per row the sum
        // over logical counters matches the concatenated-stream sketch.
        let mut sa = CountSketch::salsa(3, 32, 8, seed);
        let mut sb = CountSketch::salsa(3, 32, 8, seed);
        let mut concat = CountSketch::salsa(3, 32, 8, seed);
        for &item in &a {
            sa.update(item, 1);
            concat.update(item, 1);
        }
        for &item in &b {
            sb.update(item, 1);
            concat.update(item, 1);
        }
        sa.merge_from(&sb);
        for (merged_row, concat_row) in sa.rows().iter().zip(concat.rows().iter()) {
            let merged_mass: i64 = merged_row.counters().map(|(_, _, v)| v).sum();
            let concat_mass: i64 = concat_row.counters().map(|(_, _, v)| v).sum();
            prop_assert_eq!(merged_mass, concat_mass);
        }
    }
}
