//! Property-based equivalence of the allocation-free merge entry points.
//!
//! The zero-allocation hot path (PR 9) introduced `copy_from` (refresh a
//! warm buffer in place) and `merge_with_helper` (merge reusing a
//! [`MergeHelper`] scratch arena).  These must be *semantically invisible*
//! next to the allocating `merge_into_new` wrapper: over arbitrary stream
//! splits, merging with a reused helper into a `copy_from`-refreshed
//! destination — even one previously polluted by an unrelated stream —
//! gives byte-identical estimates for CMS (sum and max), CUS and Count
//! Sketch.  UnivMon's merge rebuilds its per-level heavy-hitter trackers,
//! so its derived statistics are compared under a tight relative
//! tolerance instead of bit equality.

use proptest::prelude::*;
use salsa_core::prelude::*;
use salsa_sketches::helper::MergeHelper;
use salsa_sketches::prelude::*;

/// An arbitrary cash-register stream over a small universe, so collisions
/// and merge events actually happen in narrow sketches.
fn stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..200, 1u64..60), 1..250)
}

/// |x − y| ≤ tol · max(|x|, |y|, 1): equal up to float re-association.
fn close(x: f64, y: f64, tol: f64) -> bool {
    (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cms_helper_merge_matches_merge_into_new(
        a in stream(), b in stream(), junk in stream(), seed in 0u64..500
    ) {
        let mut helper = MergeHelper::new();
        for op in [MergeOp::Sum, MergeOp::Max] {
            let mut sa = CountMin::<SalsaRow>::salsa(3, 64, 8, op, seed);
            let mut sb = CountMin::<SalsaRow>::salsa(3, 64, 8, op, seed);
            let mut dst = CountMin::<SalsaRow>::salsa(3, 64, 8, op, seed);
            for &(item, weight) in &a {
                sa.update(item, weight);
            }
            for &(item, weight) in &b {
                sb.update(item, weight);
            }
            // Pollute the destination so the test proves copy_from fully
            // refreshes a previously-used buffer, not just a fresh one.
            for &(item, weight) in &junk {
                dst.update(item, weight);
            }
            let reference = sa.merge_into_new(&sb);
            dst.copy_from(&sa);
            dst.merge_with_helper(&sb, &mut helper);
            for item in 0..200u64 {
                prop_assert_eq!(dst.estimate(item), reference.estimate(item), "item {}", item);
            }
        }
    }

    #[test]
    fn cus_helper_merge_matches_merge_into_new(
        a in stream(), b in stream(), junk in stream(), seed in 0u64..500
    ) {
        let mut sa = ConservativeUpdate::salsa(3, 64, 8, seed);
        let mut sb = ConservativeUpdate::salsa(3, 64, 8, seed);
        let mut dst = ConservativeUpdate::salsa(3, 64, 8, seed);
        for &(item, weight) in &a {
            sa.update(item, weight);
        }
        for &(item, weight) in &b {
            sb.update(item, weight);
        }
        for &(item, weight) in &junk {
            dst.update(item, weight);
        }
        let reference = sa.merge_into_new(&sb);
        let mut helper = MergeHelper::new();
        dst.copy_from(&sa);
        dst.merge_with_helper(&sb, &mut helper);
        for item in 0..200u64 {
            prop_assert_eq!(dst.estimate(item), reference.estimate(item), "item {}", item);
        }
    }

    #[test]
    fn count_sketch_helper_merge_matches_merge_into_new(
        a in prop::collection::vec(0u64..200, 1..300),
        b in prop::collection::vec(0u64..200, 1..300),
        junk in prop::collection::vec(0u64..200, 1..300),
        seed in 0u64..500
    ) {
        let mut sa = CountSketch::salsa(3, 32, 8, seed);
        let mut sb = CountSketch::salsa(3, 32, 8, seed);
        let mut dst = CountSketch::salsa(3, 32, 8, seed);
        for &item in &a {
            sa.update(item, 1);
        }
        for &item in &b {
            sb.update(item, 1);
        }
        for &item in &junk {
            dst.update(item, 1);
        }
        let reference = sa.merge_into_new(&sb);
        let mut helper = MergeHelper::new();
        dst.copy_from(&sa);
        dst.merge_with_helper(&sb, &mut helper);
        for item in 0..200u64 {
            prop_assert_eq!(dst.estimate(item), reference.estimate(item), "item {}", item);
        }
    }

    #[test]
    fn univmon_helper_merge_matches_merge_into_new_within_tolerance(
        a in prop::collection::vec(0u64..200, 1..300),
        b in prop::collection::vec(0u64..200, 1..300),
        seed in 0u64..500
    ) {
        let mut sa = UnivMon::salsa(4, 3, 64, 8, 8, seed);
        let mut sb = UnivMon::salsa(4, 3, 64, 8, 8, seed);
        for &item in &a {
            sa.update(item, 1);
        }
        for &item in &b {
            sb.update(item, 1);
        }
        let reference = sa.merge_into_new(&sb);
        let mut dst = sa.clone();
        let mut helper = MergeHelper::new();
        dst.merge_with_helper(&sb, &mut helper);
        // The helper path rebuilds the per-level trackers in the same
        // largest-first order as merge_from, so the recursive G-sum
        // estimators should agree to float re-association noise.
        prop_assert!(
            close(dst.fp_moment(2.0), reference.fp_moment(2.0), 1e-9),
            "F2: {} vs {}", dst.fp_moment(2.0), reference.fp_moment(2.0)
        );
        prop_assert!(
            close(dst.distinct(), reference.distinct(), 1e-9),
            "distinct: {} vs {}", dst.distinct(), reference.distinct()
        );
        prop_assert!(
            close(dst.entropy(), reference.entropy(), 1e-9),
            "entropy: {} vs {}", dst.entropy(), reference.entropy()
        );
    }
}
