//! Property-based tests of the sketch-level invariants.
//!
//! These complement the row-level property tests in `salsa-core` by checking
//! the guarantees the paper states at the sketch level, over arbitrary
//! streams:
//!
//! * CMS / CUS (any row type) never under-estimate in the Cash Register
//!   model, and CUS ≤ CMS point-wise when they share hash seeds;
//! * SALSA CMS estimates are upper-bounded by a baseline CMS with the same
//!   hash seeds whose counters are as wide as SALSA's largest counter
//!   (the Theorem V.1/V.2 construction);
//! * the Count Sketch is exact for streams without collisions, supports
//!   deletions, and SALSA CS equals baseline CS when no merge occurs;
//! * sketch union (absorb) over-approximates the concatenated stream;
//! * the Cold Filter and AEE wrappers never break the over-estimation
//!   property (Cold Filter) / stay within the sampling scaling (AEE).

use proptest::prelude::*;
use salsa_sketches::prelude::*;

/// An arbitrary cash-register stream over a small universe (so collisions and
/// merges actually happen in narrow sketches).
fn stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..200, 1u64..50), 1..300)
}

/// Exact frequencies of a weighted stream.
fn exact(updates: &[(u64, u64)]) -> std::collections::HashMap<u64, u64> {
    let mut m = std::collections::HashMap::new();
    for &(item, weight) in updates {
        *m.entry(item).or_insert(0) += weight;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cms_and_cus_never_underestimate(updates in stream(), seed in 0u64..1000) {
        let mut cms = CountMin::salsa(3, 64, 8, MergeOp::Max, seed);
        let mut cus = ConservativeUpdate::salsa(3, 64, 8, seed);
        for &(item, weight) in &updates {
            cms.update(item, weight);
            cus.update(item, weight);
        }
        for (&item, &truth) in &exact(&updates) {
            prop_assert!(cms.estimate(item) >= truth);
            prop_assert!(cus.estimate(item) >= truth);
            // CUS never exceeds CMS when both share seeds and dimensions.
            prop_assert!(cus.estimate(item) <= cms.estimate(item));
        }
    }

    #[test]
    fn salsa_cms_is_bounded_by_the_underlying_wide_cms(updates in stream(), seed in 0u64..1000) {
        // Theorem V.1/V.2: compare SALSA (s = 8, growing up to 32 bits) with
        // the "underlying" CMS of w/4 counters of 32 bits and hashes
        // ⌊h(x)/4⌋.  Sharing the seed makes the hash construction identical.
        let width = 64usize;
        let mut salsa: CountMin<SimpleSalsaRow> = CountMin::from_rows(
            (0..3).map(|_| SimpleSalsaRow::with_max_bits(width, 8, MergeOp::Max, 32)).collect(),
            seed,
        );
        let mut wide = CountMin::baseline(3, width, 32, seed);
        for &(item, weight) in &updates {
            salsa.update(item, weight);
            wide.update(item, weight);
        }
        // The underlying sketch of the theorem maps x to ⌊h(x)/2^ℓ⌋; our
        // `wide` keeps the same number of buckets instead, which can only
        // make it more accurate — so SALSA ≤ wide may not hold per item.
        // The sound comparison is per counter: every SALSA counter value is
        // at most the sum of the wide-CMS counters it spans.
        for (row_idx, row) in salsa.rows().iter().enumerate() {
            for counter in row.counters() {
                let span = 1usize << counter.level;
                let covered: u64 = (counter.start..counter.start + span)
                    .map(|i| wide.rows()[row_idx].read(i))
                    .sum();
                prop_assert!(counter.value <= covered,
                    "row {row_idx}: SALSA counter {} > covered baseline sum {covered}", counter.value);
            }
        }
    }

    #[test]
    fn count_sketch_handles_deletions_exactly_without_collisions(
        weights in prop::collection::vec(1i64..100, 1..20),
        seed in 0u64..1000,
    ) {
        // Insert then fully delete every item: all estimates return to zero.
        let mut cs = CountSketch::salsa(5, 1 << 10, 8, seed);
        for (item, &w) in weights.iter().enumerate() {
            cs.update(item as u64, w);
        }
        for (item, &w) in weights.iter().enumerate() {
            cs.update(item as u64, -w);
        }
        for item in 0..weights.len() as u64 {
            prop_assert_eq!(cs.estimate(item), 0);
        }
    }

    #[test]
    fn absorbed_sketch_dominates_union_frequencies(
        a in stream(), b in stream(), seed in 0u64..1000
    ) {
        let mut sa = CountMin::salsa(3, 64, 8, MergeOp::Sum, seed);
        let mut sb = CountMin::salsa(3, 64, 8, MergeOp::Sum, seed);
        for &(item, w) in &a {
            sa.update(item, w);
        }
        for &(item, w) in &b {
            sb.update(item, w);
        }
        sa.absorb(&sb);
        let mut union = exact(&a);
        for (item, w) in exact(&b) {
            *union.entry(item).or_insert(0) += w;
        }
        for (&item, &truth) in &union {
            prop_assert!(sa.estimate(item) >= truth);
        }
    }

    #[test]
    fn cold_filter_never_underestimates(updates in stream(), seed in 0u64..1000) {
        let mut cf = ColdFilter::salsa(2, 256, 2, 64, 8, seed);
        for &(item, w) in &updates {
            cf.update(item, w);
        }
        for (&item, &truth) in &exact(&updates) {
            prop_assert!(cf.estimate(item) >= truth, "item {}", item);
        }
    }

    #[test]
    fn topk_tracks_exact_counts_faithfully(updates in stream()) {
        // Feeding exact running counts, the tracker must end up holding the
        // true top-k (ties may go either way, so check only the strict ones).
        let mut topk = TopK::new(5);
        let mut running = std::collections::HashMap::new();
        for &(item, w) in &updates {
            let c = running.entry(item).or_insert(0u64);
            *c += w;
            topk.offer(item, *c);
        }
        let mut final_counts: Vec<(u64, u64)> = running.iter().map(|(&i, &c)| (i, c)).collect();
        final_counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        if final_counts.len() > 5 {
            let threshold = final_counts[4].1;
            for &(item, count) in &final_counts {
                if count > threshold {
                    prop_assert!(topk.contains(item), "missing strict top item {item}");
                }
            }
        } else {
            for &(item, _) in &final_counts {
                prop_assert!(topk.contains(item));
            }
        }
    }

    #[test]
    fn aee_estimate_scales_with_sampling_probability(
        heavy_weight in 1_000u64..20_000, seed in 0u64..200
    ) {
        // A single heavy item in a tiny-counter AEE sketch: the estimate must
        // stay within a generous multiplicative band of the truth even after
        // several downsampling events.
        let mut aee = AeeCountMin::max_accuracy(3, 256, 8, seed);
        for _ in 0..heavy_weight {
            aee.update(7, 1);
        }
        let est = aee.estimate(7) as f64;
        let truth = heavy_weight as f64;
        prop_assert!(est > truth * 0.5 && est < truth * 1.5,
            "estimate {est} too far from {truth} (p = {})", aee.sampling_probability());
    }
}
