//! Self-tests for the loom-lite checker: it must *catch* the classic
//! concurrency bugs (otherwise a green protocol model means nothing) and
//! must *pass* their fixed versions while exhausting the bounded schedule
//! space.

use loom_lite::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom_lite::sync::{Arc, Mutex};
use loom_lite::{thread, Builder};

/// An unsynchronized read-modify-write (load + store, not `fetch_add`)
/// loses updates under some interleaving; the checker must find it.
#[test]
fn catches_lost_update() {
    let report = Builder::default().check(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let racer = Arc::clone(&counter);
        let t = thread::spawn(move || {
            let v = racer.load(Ordering::SeqCst);
            racer.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().ok();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = report.failure.expect("the lost update must be found");
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
    assert!(!failure.schedule.is_empty());
}

/// The same increment through `fetch_add` is atomic: every interleaving
/// passes and the (tiny) schedule space is fully exhausted.
#[test]
fn passes_atomic_increment() {
    let report = Builder::default().check(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let adder = Arc::clone(&counter);
        let t = thread::spawn(move || {
            adder.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join().ok();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "schedule space should be exhausted");
    assert!(report.interleavings >= 2, "{}", report.interleavings);
}

/// A mutex-protected read-modify-write never loses updates.
#[test]
fn passes_mutex_protected_counter() {
    let report = Builder::default().check(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let other = Arc::clone(&counter);
        let t = thread::spawn(move || {
            let mut guard = other.lock().expect("poisoning is not modeled");
            *guard += 1;
        });
        {
            let mut guard = counter.lock().expect("poisoning is not modeled");
            *guard += 1;
        }
        t.join().ok();
        assert_eq!(*counter.lock().expect("poisoning is not modeled"), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

/// Classic AB-BA lock ordering: some interleaving deadlocks, and the
/// scheduler must report it rather than hang.
#[test]
fn catches_lock_order_deadlock() {
    let report = Builder::default().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _b = b2.lock().expect("poisoning is not modeled");
            let _a = a2.lock().expect("poisoning is not modeled");
        });
        let _a = a.lock().expect("poisoning is not modeled");
        let _b = b.lock().expect("poisoning is not modeled");
        drop((_a, _b));
        t.join().ok();
    });
    let failure = report.failure.expect("the AB-BA deadlock must be found");
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

/// A flag-publish protocol with a yielding spin loop: the consumer must
/// always observe the data the producer wrote before raising the flag
/// (sequential consistency), and the spin loop must not hang exploration.
#[test]
fn passes_flag_publish_with_spin_wait() {
    let report = Builder::default().check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(AtomicBool::new(false));
        let (data2, ready2) = (Arc::clone(&data), Arc::clone(&ready));
        let t = thread::spawn(move || {
            data2.store(42, Ordering::SeqCst);
            ready2.store(true, Ordering::SeqCst);
        });
        while !ready.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        assert_eq!(data.load(Ordering::SeqCst), 42, "saw flag before data");
        t.join().ok();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.interleavings >= 3, "{}", report.interleavings);
}

/// The interleaving cap stops exploration early and says so.
#[test]
fn respects_interleaving_cap() {
    let report = Builder::default().max_interleavings(5).check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            for _ in 0..4 {
                x2.fetch_add(1, Ordering::SeqCst);
            }
        });
        for _ in 0..4 {
            x.fetch_add(1, Ordering::SeqCst);
        }
        t.join().ok();
    });
    assert!(report.failure.is_none());
    assert!(!report.complete, "cap must mark the run incomplete");
    assert_eq!(report.interleavings, 5);
}

/// Three threads and a few preemptions generate a substantial,
/// fully-exhausted schedule space — the scale the protocol models need.
#[test]
fn explores_many_interleavings() {
    let report = Builder::default().preemption_bound(3).check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let x = Arc::clone(&x);
            handles.push(thread::spawn(move || {
                for _ in 0..3 {
                    x.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for _ in 0..3 {
            x.fetch_add(1, Ordering::SeqCst);
        }
        for handle in handles {
            handle.join().ok();
        }
        assert_eq!(x.load(Ordering::SeqCst), 9);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.interleavings >= 1_000, "{}", report.interleavings);
}

/// `model()` itself panics with the counterexample, for use as a plain
/// assertion inside tests.
#[test]
#[should_panic(expected = "model failed")]
fn model_panics_on_violation() {
    loom_lite::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
        });
        assert_eq!(x.load(Ordering::SeqCst), 0, "racy read");
        t.join().ok();
    });
}
