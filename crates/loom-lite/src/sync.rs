//! Modeled `std::sync` stand-ins: atomics, [`Mutex`], and [`RwLock`].
//!
//! Inside a [`crate::model`] run every operation is a scheduling point
//! (see the internal `exec` module); outside a run each type degrades to the plain
//! `std::sync` operation with `SeqCst` ordering, so the same code compiles
//! and behaves correctly in both worlds.

pub use std::sync::Arc;

use crate::exec::context;

/// Modeled atomic integers and booleans.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::exec::context;

    /// A modeled atomic access: one scheduling point, then the real
    /// operation (which is uncontended — only one modeled thread runs at
    /// a time, so `SeqCst` on the backing atomic is merely the safe
    /// storage, not the thing being checked).
    fn step() {
        if let Some(ctx) = context() {
            ctx.exec.switch_point(ctx.id);
        }
    }

    macro_rules! modeled_int_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// A modeled atomic integer; every access is a scheduling
            /// point inside a model run.  The `Ordering` argument is
            /// accepted for API fidelity; interleavings are explored
            /// under sequential consistency (see the crate docs).
            #[derive(Debug, Default)]
            pub struct $name {
                value: $std,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub fn new(value: $int) -> Self {
                    Self {
                        value: <$std>::new(value),
                    }
                }

                /// Atomically loads the value.
                pub fn load(&self, _order: Ordering) -> $int {
                    step();
                    self.value.load(Ordering::SeqCst)
                }

                /// Atomically stores a value.
                pub fn store(&self, value: $int, _order: Ordering) {
                    step();
                    self.value.store(value, Ordering::SeqCst);
                }

                /// Atomically swaps in a value, returning the previous one.
                pub fn swap(&self, value: $int, _order: Ordering) -> $int {
                    step();
                    self.value.swap(value, Ordering::SeqCst)
                }

                /// Atomically adds, returning the previous value.
                pub fn fetch_add(&self, value: $int, _order: Ordering) -> $int {
                    step();
                    self.value.fetch_add(value, Ordering::SeqCst)
                }

                /// Atomically subtracts, returning the previous value.
                pub fn fetch_sub(&self, value: $int, _order: Ordering) -> $int {
                    step();
                    self.value.fetch_sub(value, Ordering::SeqCst)
                }

                /// Atomically takes the maximum, returning the previous
                /// value.
                pub fn fetch_max(&self, value: $int, _order: Ordering) -> $int {
                    step();
                    self.value.fetch_max(value, Ordering::SeqCst)
                }

                /// Atomically compares and exchanges.
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    step();
                    self.value
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Consumes the atomic, returning the inner value.
                pub fn into_inner(self) -> $int {
                    self.value.into_inner()
                }
            }
        };
    }

    modeled_int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    modeled_int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    modeled_int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

    /// A modeled atomic boolean; every access is a scheduling point
    /// inside a model run.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        value: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic with an initial value.
        pub fn new(value: bool) -> Self {
            Self {
                value: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Atomically loads the value.
        pub fn load(&self, _order: Ordering) -> bool {
            step();
            self.value.load(Ordering::SeqCst)
        }

        /// Atomically stores a value.
        pub fn store(&self, value: bool, _order: Ordering) {
            step();
            self.value.store(value, Ordering::SeqCst);
        }

        /// Atomically swaps in a value, returning the previous one.
        pub fn swap(&self, value: bool, _order: Ordering) -> bool {
            step();
            self.value.swap(value, Ordering::SeqCst)
        }

        /// Consumes the atomic, returning the inner value.
        pub fn into_inner(self) -> bool {
            self.value.into_inner()
        }
    }
}

/// Lock ids are global (an id is only ever compared within one execution,
/// so monotonically increasing across executions is fine).
fn next_lock_id() -> usize {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A modeled mutual-exclusion lock.  Inside a model run, acquisition is a
/// scheduling point and contention parks the thread in the scheduler
/// (deadlocks are detected and reported); outside a run it is a plain
/// `std::sync::Mutex`.
///
/// Poisoning is not modeled: a panic while holding the lock aborts the
/// whole execution (it *is* the counterexample), so `lock()` never
/// returns `Err` in practice; the `Result` mirrors the std API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: usize,
    held: std::sync::atomic::AtomicBool,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releasing it is a scheduling point, so a
/// parked contender can be scheduled before the releaser continues.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    modeled: bool,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Self {
            id: next_lock_id(),
            held: std::sync::atomic::AtomicBool::new(false),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, parking in the model scheduler on contention.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let modeled = if let Some(ctx) = context() {
            loop {
                ctx.exec.switch_point(ctx.id);
                if !self.held.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    break;
                }
                // Held by a (paused) sibling: park until its guard drops.
                ctx.exec.block(ctx.id, Some(self.id), None);
            }
            true
        } else {
            false
        };
        // Uncontended by construction inside a model (the scheduler runs
        // one thread at a time and `held` was free); genuinely contended
        // outside one, where it IS the lock.
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
            modeled,
        })
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> std::sync::LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard holds the lock until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard holds the lock until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if !self.modeled {
            return;
        }
        if let Some(ctx) = context() {
            self.lock
                .held
                .store(false, std::sync::atomic::Ordering::SeqCst);
            ctx.exec.unblock_lock_waiters(self.lock.id);
            // Releasing is a visible action: give the scheduler a chance
            // to run a woken contender before the releaser continues.
            // Skipped during an unwind (the execution is aborting anyway,
            // and a panic inside Drop would escalate to a process abort).
            if !std::thread::panicking() {
                ctx.exec.switch_point(ctx.id);
            }
        }
    }
}

/// A modeled reader-writer lock, conservatively approximated as an
/// *exclusive* lock: readers serialize with each other as well as with
/// writers.  Every interleaving of critical-section bodies that the real
/// `std::sync::RwLock` admits for the lock-step protocols in this
/// workspace (short read sections that copy out shared state) is still
/// explored; only reader-reader overlap is lost, which cannot introduce
/// new states when readers do not write.  Outside a model run it is a
/// plain `std::sync::Mutex` as well.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: Mutex<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }

    /// Acquires a (modeled-exclusive) read guard.
    pub fn read(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        self.inner.lock()
    }

    /// Acquires a write guard.
    pub fn write(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        self.inner.lock()
    }
}
