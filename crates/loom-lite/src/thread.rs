//! Modeled threads: [`spawn`], [`JoinHandle`], and [`yield_now`].

use crate::exec::{context, run_thread};

/// Handle to a modeled thread; [`JoinHandle::join`] parks the caller in
/// the scheduler until the target finishes.
pub struct JoinHandle<T> {
    target: Option<usize>,
    real: std::thread::JoinHandle<Option<T>>,
}

/// Spawns a modeled thread inside a model run (one more OS thread gated
/// on the execution's scheduler), or a plain `std::thread` outside one.
/// Spawning is itself a scheduling point: the child may run immediately.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match context() {
        Some(ctx) => {
            let id = ctx.exec.register_thread();
            let exec = std::sync::Arc::clone(&ctx.exec);
            let real = std::thread::Builder::new()
                .name(format!("loom-lite-{id}"))
                .spawn(move || run_thread(exec, id, f))
                .expect("failed to spawn a modeled thread");
            ctx.exec.switch_point(ctx.id);
            JoinHandle {
                target: Some(id),
                real,
            }
        }
        None => JoinHandle {
            target: None,
            real: std::thread::spawn(move || Some(f())),
        },
    }
}

/// Declares a spin-loop pause: the calling thread is deprioritized until
/// another thread has taken a step.  Retry loops in modeled code MUST call
/// this (instead of sleeping), both so the explorer can bound them and so
/// waiting does not monopolize the schedule.
pub fn yield_now() {
    if let Some(ctx) = context() {
        ctx.exec.block(ctx.id, None, None);
    } else {
        std::thread::yield_now();
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the target thread to finish and returns its result.
    ///
    /// Inside a model run this parks the caller in the scheduler (a join
    /// cycle is reported as a deadlock).  The `Err` case mirrors the std
    /// API; inside a model a panicking target aborts the whole execution
    /// as the counterexample instead of surfacing here.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(target), Some(ctx)) = (self.target, context()) {
            ctx.exec.switch_point(ctx.id);
            while !ctx.exec.is_finished(target) {
                ctx.exec.block(ctx.id, None, Some(target));
            }
        }
        match self.real.join() {
            Ok(Some(value)) => Ok(value),
            // The target unwound via the abort sentinel: this execution is
            // being torn down, so unwind the joiner the same way.
            Ok(None) => std::panic::panic_any(crate::exec::Abort),
            Err(payload) => Err(payload),
        }
    }
}
