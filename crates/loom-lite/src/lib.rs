//! # loom-lite — exhaustive interleaving checking without dependencies
//!
//! A vendored-style miniature of [loom]: drop-in modeled versions of the
//! `std::sync` primitives this workspace uses ([`sync::atomic::AtomicU64`],
//! [`sync::atomic::AtomicUsize`], [`sync::Mutex`], [`sync::RwLock`],
//! [`thread::spawn`]) plus a deterministic scheduler that runs a closure
//! under **every** thread interleaving reachable with a bounded number of
//! preemptions, and reports the first schedule that makes an assertion
//! fail, deadlocks, or livelocks.
//!
//! ```
//! use loom_lite::sync::atomic::{AtomicU64, Ordering};
//! use loom_lite::sync::Arc;
//!
//! let report = loom_lite::Builder::default().check(|| {
//!     let counter = Arc::new(AtomicU64::new(0));
//!     let writer = Arc::clone(&counter);
//!     let t = loom_lite::thread::spawn(move || {
//!         writer.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     t.join().ok();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.failure.is_none());
//! assert!(report.interleavings >= 2);
//! ```
//!
//! ## Model
//!
//! Execution is **sequentialized**: exactly one modeled thread runs at a
//! time, and every operation on a modeled primitive is a *scheduling
//! point* where the scheduler may preempt it.  The explorer performs a
//! depth-first search over these decisions, bounded by
//! [`Builder::preemption_bound`] voluntary preemptions per execution
//! (forced switches — blocking on a lock or join, [`thread::yield_now`],
//! thread exit — are always free, as in CHESS-style bounded model
//! checking).  Each completed execution is one **distinct interleaving**;
//! [`Report::interleavings`] counts them and [`Report::complete`] says
//! whether the bounded schedule space was exhausted.
//!
//! Interleavings are explored under **sequential consistency**: the
//! `Ordering` argument of modeled atomics is accepted for API fidelity but
//! every modeled access is globally ordered.  loom-lite therefore catches
//! protocol races — a reader observing a half-published pair of counters,
//! a query racing a generation seal, lost updates, deadlocks — but not
//! bugs that *require* weaker-than-SC reorderings; those are covered by
//! the ThreadSanitizer CI job instead.
//!
//! ## What runs where
//!
//! Modeled threads are real OS threads gated on a condition variable, so
//! no `unsafe` is needed anywhere (`#![forbid(unsafe_code)]`).  Outside a
//! [`model`]/[`Builder::check`] run every modeled primitive degrades to a
//! plain `SeqCst` `std::sync` operation, which is what allows production
//! types to be compiled against this crate behind a `loom-lite` cargo
//! feature (see `salsa_metrics::sync` and `salsa_pipeline::sync`).
//!
//! [loom]: https://docs.rs/loom

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod sync;
pub mod thread;

pub use exec::{Builder, Failure, Report};

/// Checks `f` under every interleaving reachable within the default
/// bounds, panicking with the counterexample schedule on the first
/// violated assertion, deadlock, or livelock.  Use [`Builder::check`] for
/// a non-panicking [`Report`] (e.g. to assert on the interleaving count).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::default().check(f);
    if let Some(failure) = report.failure {
        panic!(
            "loom-lite: model failed after {} interleaving(s): {}\nschedule: {:?}",
            report.interleavings, failure.message, failure.schedule
        );
    }
}
