//! The deterministic scheduler and the depth-first schedule explorer.
//!
//! One *execution* runs the model closure once under a prescribed schedule
//! prefix: every modeled operation enters [`Execution::switch_point`],
//! where the scheduler either replays the prescribed decision or makes a
//! default one (keep running the current thread) while recording which
//! alternative threads could have been chosen.  The explorer then
//! backtracks over those recorded alternatives, re-running the closure
//! until the bounded schedule space is exhausted — a textbook stateless
//! depth-first search in the style of CHESS/loom, with real OS threads
//! gated on a condition variable standing in for continuations.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel panic payload used to unwind modeled threads when an execution
/// aborts (failure found, or a sibling thread panicked).  Never surfaces to
/// the user: the wrapper in [`run_thread`] swallows it.
pub(crate) struct Abort;

thread_local! {
    static CONTEXT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The per-OS-thread handle into the active execution, if any.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) id: usize,
}

/// The current modeled-thread context (`None` outside a model run, in
/// which case modeled primitives degrade to plain `std::sync` behavior).
pub(crate) fn context() -> Option<Ctx> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// What a modeled thread is allowed to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// May be scheduled.
    Runnable,
    /// Called [`crate::thread::yield_now`]; re-runnable once another
    /// thread has taken a step (prevents spin loops from monopolizing the
    /// exploration).
    Yielded,
    /// Waiting for the modeled lock with this id to be released.
    Lock(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Done; never scheduled again.
    Finished,
}

/// One scheduling decision the explorer can revisit: the thread chosen,
/// plus the not-yet-tried alternatives that were legal at that point.
#[derive(Debug)]
struct Frame {
    chosen: usize,
    alternatives: Vec<usize>,
}

struct ExecState {
    status: Vec<Status>,
    /// The one thread allowed to run right now.
    current: usize,
    finished: usize,
    /// Decisions taken so far in this execution (thread id per decision).
    taken: Vec<usize>,
    /// Frames for decisions *beyond* the prescribed prefix — the explorer
    /// appends these to its stack after the run.
    new_frames: Vec<Frame>,
    /// Schedule prefix the explorer wants replayed.
    prescribed: Vec<usize>,
    preemptions_left: usize,
    steps: u64,
    max_steps: u64,
    failure: Option<String>,
    abort: bool,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

/// What one completed execution reports back to the explorer.
struct Outcome {
    failure: Option<String>,
    taken: Vec<usize>,
    new_frames: Vec<Frame>,
}

impl Execution {
    /// Declares a scheduling point for thread `me`: another runnable
    /// thread may be scheduled here (a preemption if `me` could have kept
    /// running).  Blocks until `me` is scheduled again; panics with
    /// [`Abort`] if the execution aborts meanwhile.
    pub(crate) fn switch_point(&self, me: usize) {
        let mut st = self.lock_state();
        st.steps += 1;
        if st.steps > st.max_steps && st.failure.is_none() {
            st.failure = Some(format!(
                "livelock: execution exceeded {} scheduling points",
                st.max_steps
            ));
            st.abort = true;
            self.cv.notify_all();
            std::panic::panic_any(Abort);
        }
        // `me` just took a step, so every spin-yielded thread has seen
        // progress and becomes eligible again.
        for (i, s) in st.status.iter_mut().enumerate() {
            if i != me && *s == Status::Yielded {
                *s = Status::Runnable;
            }
        }
        self.schedule(&mut st, me, true);
        self.wait_for_turn(st, me);
    }

    /// Parks thread `me` with the given blocked status and hands the
    /// schedule to another thread; returns once `me` is scheduled again.
    pub(crate) fn block(
        &self,
        me: usize,
        status_is_lock: Option<usize>,
        join_target: Option<usize>,
    ) {
        let mut st = self.lock_state();
        st.status[me] = match (status_is_lock, join_target) {
            (Some(lock), None) => Status::Lock(lock),
            (None, Some(target)) => Status::Join(target),
            _ => Status::Yielded,
        };
        self.schedule(&mut st, me, false);
        self.wait_for_turn(st, me);
    }

    /// Marks every thread blocked on modeled lock `lock_id` runnable
    /// again (called by the releasing guard, which still holds the
    /// schedule, so no decision is made here).
    pub(crate) fn unblock_lock_waiters(&self, lock_id: usize) {
        let mut st = self.lock_state();
        for s in st.status.iter_mut() {
            if *s == Status::Lock(lock_id) {
                *s = Status::Runnable;
            }
        }
    }

    /// Returns whether thread `target` has finished.
    pub(crate) fn is_finished(&self, target: usize) -> bool {
        self.lock_state().status[target] == Status::Finished
    }

    /// Registers a freshly spawned modeled thread and returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.status.push(Status::Runnable);
        st.status.len() - 1
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Waits (holding the state guard across condvar sleeps) until `me` is
    /// the current thread; panics with [`Abort`] if the execution aborts.
    fn wait_for_turn(&self, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.current == me {
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The decision core: picks the next thread to run at one scheduling
    /// point.  `me_runnable` is false when `me` just blocked, yielded, or
    /// finished (a *forced* switch, which never costs preemption budget).
    fn schedule(&self, st: &mut ExecState, me: usize, me_runnable: bool) {
        let mut candidates: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            // Only yielded threads left: let them spin rather than report
            // a phantom deadlock (the step budget bounds real livelocks).
            for s in st.status.iter_mut() {
                if *s == Status::Yielded {
                    *s = Status::Runnable;
                }
            }
            candidates = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
        }
        if candidates.is_empty() {
            if st.finished < st.status.len() && st.failure.is_none() {
                let blocked: Vec<usize> = st
                    .status
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, Status::Lock(_) | Status::Join(_)))
                    .map(|(i, _)| i)
                    .collect();
                st.failure = Some(format!("deadlock: threads {blocked:?} are blocked forever"));
                st.abort = true;
            }
            self.cv.notify_all();
            return;
        }

        let decision = st.taken.len();
        let choice = if decision < st.prescribed.len() {
            let forced = st.prescribed[decision];
            if !candidates.contains(&forced) {
                // The model used a source of nondeterminism beyond the
                // scheduler (time, randomness, ...): replay diverged.
                if st.failure.is_none() {
                    st.failure = Some(format!(
                        "nondeterministic model: replay wanted thread {forced} but runnable set \
                         was {candidates:?} at decision {decision}"
                    ));
                    st.abort = true;
                }
                self.cv.notify_all();
                return;
            }
            forced
        } else {
            let (choice, alternatives) = if me_runnable && candidates.contains(&me) {
                // Default: keep running; preempting is optional and costs
                // budget, so alternatives exist only while budget remains.
                if st.preemptions_left > 0 {
                    (
                        me,
                        candidates.iter().copied().filter(|&t| t != me).collect(),
                    )
                } else {
                    (me, Vec::new())
                }
            } else {
                // Forced switch: every runnable thread is a free choice.
                (candidates[0], candidates[1..].to_vec())
            };
            st.new_frames.push(Frame {
                chosen: choice,
                alternatives,
            });
            choice
        };
        if choice != me && me_runnable && st.status.get(me) == Some(&Status::Runnable) {
            st.preemptions_left = st.preemptions_left.saturating_sub(1);
        }
        st.taken.push(choice);
        if st.status[choice] == Status::Yielded {
            st.status[choice] = Status::Runnable;
        }
        st.current = choice;
        self.cv.notify_all();
    }

    /// Thread-exit protocol: marks `me` finished, wakes joiners, records a
    /// user panic as the execution's failure, and hands off the schedule.
    fn finish(&self, me: usize, user_panic: Option<String>) {
        let mut st = self.lock_state();
        st.status[me] = Status::Finished;
        st.finished += 1;
        for s in st.status.iter_mut() {
            if *s == Status::Join(me) {
                *s = Status::Runnable;
            }
        }
        if let Some(message) = user_panic {
            if st.failure.is_none() {
                st.failure = Some(message);
            }
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        if st.abort || st.finished == st.status.len() {
            self.cv.notify_all();
            return;
        }
        self.schedule(&mut st, me, false);
    }
}

/// Runs `body` as modeled thread `id` of `exec`: waits to be scheduled,
/// runs it under `catch_unwind`, and executes the exit protocol.  Returns
/// `Some(value)` on clean completion, `None` when the execution aborted.
pub(crate) fn run_thread<T>(
    exec: Arc<Execution>,
    id: usize,
    body: impl FnOnce() -> T,
) -> Option<T> {
    CONTEXT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            id,
        })
    });
    // UNWIND-OK: a panic in the modeled body is the checker's signal —
    // caught here and reported as the failing interleaving (or as the
    // Abort control-flow payload), never propagated to the harness.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let st = exec.lock_state();
        exec.wait_for_turn(st, id);
        body()
    }));
    let (value, user_panic) = match result {
        Ok(value) => (Some(value), None),
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_some() {
                (None, None)
            } else {
                (None, Some(panic_message(payload.as_ref())))
            }
        }
    };
    exec.finish(id, user_panic);
    CONTEXT.with(|c| *c.borrow_mut() = None);
    value
}

fn panic_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "modeled thread panicked with a non-string payload".to_string()
    }
}

/// Silences the default panic printer for panics raised inside modeled
/// threads: they are either the [`Abort`] sentinel or a counterexample
/// that the explorer reports through [`Report::failure`] anyway.
fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if context().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// A schedule that violated an invariant, as reported by
/// [`Builder::check`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic message, deadlock description, or livelock diagnosis.
    pub message: String,
    /// The decision sequence (thread id per scheduling point) that
    /// reproduces the failure.
    pub schedule: Vec<usize>,
}

/// The result of exploring a model's schedule space.
#[derive(Debug, Clone)]
pub struct Report {
    /// Completed executions — each a distinct thread interleaving.
    pub interleavings: u64,
    /// Whether the bounded schedule space was exhausted (`false` when the
    /// run stopped at [`Builder::max_interleavings`] or on a failure).
    pub complete: bool,
    /// The first schedule that violated an invariant, if any.
    pub failure: Option<Failure>,
}

/// Exploration bounds for [`Builder::check`].
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Maximum *voluntary* preemptions per execution (forced switches at
    /// blocking points are free).  2–3 suffices for almost all protocol
    /// bugs (the CHESS observation); higher explores more schedules.
    pub preemption_bound: usize,
    /// Hard cap on executions, as a runaway backstop.
    pub max_interleavings: u64,
    /// Per-execution cap on scheduling points; exceeding it is reported as
    /// a livelock.
    pub max_steps: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_interleavings: 100_000,
            max_steps: 20_000,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Sets the execution cap.
    pub fn max_interleavings(mut self, cap: u64) -> Self {
        self.max_interleavings = cap;
        self
    }

    /// Explores `f` under every reachable interleaving within the bounds
    /// and returns the [`Report`] (first failure wins; exploration stops
    /// there).
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let f = Arc::new(f);
        let mut stack: Vec<Frame> = Vec::new();
        let mut interleavings = 0u64;
        loop {
            let prescribed: Vec<usize> = stack.iter().map(|frame| frame.chosen).collect();
            let outcome = run_once(Arc::clone(&f), &prescribed, self);
            interleavings += 1;
            if let Some(message) = outcome.failure {
                return Report {
                    interleavings,
                    complete: false,
                    failure: Some(Failure {
                        message,
                        schedule: outcome.taken,
                    }),
                };
            }
            stack.extend(outcome.new_frames);
            loop {
                match stack.last_mut() {
                    None => {
                        return Report {
                            interleavings,
                            complete: true,
                            failure: None,
                        }
                    }
                    Some(frame) => {
                        if let Some(alternative) = frame.alternatives.pop() {
                            frame.chosen = alternative;
                            break;
                        }
                        stack.pop();
                    }
                }
            }
            if interleavings >= self.max_interleavings {
                return Report {
                    interleavings,
                    complete: false,
                    failure: None,
                };
            }
        }
    }
}

/// Runs the model closure once under `prescribed` and collects the
/// outcome.  Modeled threads are real OS threads; the scheduler guarantees
/// only one runs at a time, and this function returns only after all of
/// them have executed their exit protocol.
fn run_once<F>(f: Arc<F>, prescribed: &[usize], bounds: &Builder) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution {
        state: Mutex::new(ExecState {
            status: vec![Status::Runnable],
            current: 0,
            finished: 0,
            taken: Vec::new(),
            new_frames: Vec::new(),
            prescribed: prescribed.to_vec(),
            preemptions_left: bounds.preemption_bound,
            steps: 0,
            max_steps: bounds.max_steps,
            failure: None,
            abort: false,
        }),
        cv: Condvar::new(),
    });
    let main_exec = Arc::clone(&exec);
    let main = std::thread::Builder::new()
        .name("loom-lite-0".to_string())
        .spawn(move || {
            let body_exec = Arc::clone(&main_exec);
            run_thread(main_exec, 0, move || {
                f();
                // The model's "main" joins every straggler implicitly: keep
                // handing the schedule away until only finished threads
                // remain, so child threads the closure did not join still
                // complete inside the exploration.
                loop {
                    let st = body_exec.lock_state();
                    let stragglers = st
                        .status
                        .iter()
                        .enumerate()
                        .any(|(i, s)| i != 0 && *s != Status::Finished);
                    drop(st);
                    if !stragglers {
                        break;
                    }
                    body_exec.block(0, None, None);
                }
            })
        })
        .expect("failed to spawn the model's main thread");
    {
        let mut st = exec.lock_state();
        loop {
            if st.finished == st.status.len() {
                break;
            }
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    let _ = main.join();
    let mut st = exec.lock_state();
    Outcome {
        failure: st.failure.take(),
        taken: std::mem::take(&mut st.taken),
        new_frames: std::mem::take(&mut st.new_frames),
    }
}
