//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use.  Instead of criterion's statistical machinery it runs a short
//! warm-up, then measures a fixed number of samples and reports the mean
//! and min ns/iter (plus derived throughput) on stdout — enough to compare
//! the relative update/query costs the SALSA paper discusses, with no
//! dependencies.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a group's benches.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            throughput: None,
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            settings: Settings::default(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, Settings::default(), &mut f);
        self
    }
}

/// Units for reporting derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; only a naming shim here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// A small per-iteration input.
    SmallInput,
    /// A large per-iteration input.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// A benchmark identifier (`BenchmarkId::from_parameter(...)` etc.).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work, for derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Sets how many samples to take per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.settings, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        run_one(&id.into().id, self.settings, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing nothing extra; parity with criterion).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; records the measured routine.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample (f64 so that
    /// amortising over many iterations keeps sub-nanosecond resolution).
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine` repeatedly, running enough iterations per sample
    /// that the `Instant` overhead does not dominate sub-microsecond
    /// routines (real criterion amortizes the same way).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding the setup
    /// time from the measurement.  Each sample times a single invocation, so
    /// keep batched routines coarse enough (≥ microseconds) to swamp timer
    /// overhead.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn run_one(id: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up sample, discarded.
    let mut warmup = Bencher {
        samples: Vec::new(),
        sample_size: 1,
    };
    f(&mut warmup);

    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let total: f64 = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let rate = match settings.throughput {
        Some(Throughput::Elements(n)) => format!(" ({:.2} Melem/s)", n as f64 / mean * 1e3),
        Some(Throughput::Bytes(n)) => format!(" ({:.2} MB/s)", n as f64 / mean * 1e3),
        None => String::new(),
    };
    println!(
        "  {id}: mean {:.0} ns/iter, min {:.0} ns/iter over {} samples{rate}",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
