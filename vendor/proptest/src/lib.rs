//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), the
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros, and
//! [`Strategy`] implementations for integer/float ranges, tuples of
//! strategies and [`collection::vec`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (no `PROPTEST_*` environment handling), and there is **no
//! shrinking** — a failing case panics with the generated inputs so it can
//! be reproduced by hand.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SampleUniform, SeedableRng};
use std::fmt;
use std::ops::Range;

/// The random source handed to strategies — the workspace's offline `rand`
/// generator (real proptest likewise builds on `rand`).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(state: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(state),
        }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// FNV-1a over a string — used to derive a stable per-test seed from the
/// test's name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Extracts a printable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("test body panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("test body panicked: {s}")
    } else {
        "test body panicked".to_string()
    }
}

/// How a generated case failed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Test-runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of arbitrary values of type `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + fmt::Debug> Strategy for Range<T> {
    type Value = T;

    #[inline]
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(&mut rng.inner, self.start, self.end)
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SampleUniform, Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and length range
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = usize::sample_range(&mut rng.inner, self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` paths the prelude exposes (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the generated inputs in the message) instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with a value-revealing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with a value-revealing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// plain `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::seed_from_u64(
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut passed: u32 = 0;
                let mut rejected: u64 = 0;
                let max_rejects = (config.cases as u64) * 20 + 100;
                while passed < config.cases {
                    // Snapshot so the failing case's inputs can be
                    // regenerated for the panic message — formatting them up
                    // front would cost an allocation per passing case.
                    let case_rng = rng.clone();
                    // Inner scope: the generated bindings shadow the strategy
                    // expressions' names (`updates in updates()` is idiomatic
                    // proptest), so they must not leak into the match arms.
                    let case = {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        // catch_unwind so a panic inside the body (not just a
                        // prop_assert* failure) still reports the generated
                        // inputs below.
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            move || -> ::core::result::Result<(), $crate::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                ::core::result::Result::Ok(())
                            },
                        ))
                        .unwrap_or_else(|payload| {
                            ::core::result::Result::Err($crate::TestCaseError::Fail(
                                $crate::panic_message(&payload),
                            ))
                        })
                    };
                    match case {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(cond)) => {
                            rejected += 1;
                            if rejected > max_rejects {
                                panic!(
                                    "{}: too many prop_assume! rejections ({cond})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            let mut replay_rng = case_rng;
                            $(let $arg =
                                $crate::Strategy::generate(&($strat), &mut replay_rng);)+
                            let inputs = format!(
                                concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                                $(&$arg),+
                            );
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs:{}",
                                passed + 1,
                                stringify!($name),
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}
