//! Behavioral tests of the proptest stand-in itself: the macro must run
//! cases, honor `prop_assume!`, and panic with the generated inputs on
//! failure.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranges_respect_bounds(x in 3u64..17, f in -2.0f64..2.0, i in -50i64..-10) {
        prop_assert!((3..17).contains(&x));
        prop_assert!((-2.0..2.0).contains(&f));
        prop_assert!((-50..-10).contains(&i));
    }

    #[test]
    fn vec_strategy_respects_size_and_element_ranges(
        v in prop::collection::vec((0usize..8, 1u64..100), 2..20)
    ) {
        prop_assert!((2..20).contains(&v.len()));
        for &(idx, w) in &v {
            prop_assert!(idx < 8);
            prop_assert!((1..100).contains(&w));
        }
    }

    #[test]
    fn assume_skips_cases_without_failing(x in 0u64..100) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_case_reports_generated_inputs(x in 0u64..10) {
        prop_assert!(x > 100, "x was only {x}");
    }

    #[test]
    #[should_panic(expected = "test body panicked")]
    fn body_panics_are_reported_with_inputs(x in 0u64..10) {
        let v = [0u8; 1];
        // An out-of-bounds index — the failure mode property tests exist to
        // catch — must still be routed through the input-reporting path.
        let _ = v[x as usize + 1];
    }
}

#[test]
fn deterministic_across_runs() {
    let mut a = proptest::TestRng::seed_from_u64(9);
    let mut b = proptest::TestRng::seed_from_u64(9);
    for _ in 0..64 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
