//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`] over half-open ranges,
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].  The generator is
//! SplitMix64 — statistically fine for workload synthesis, deterministic in
//! its seed, and dependency-free.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state` (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64 — irrelevant for workload
                // synthesis; keeps the sampler branch-free.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + <f64 as StandardSample>::sample(rng) * (hi - lo);
        // `lo + f * (hi - lo)` can round up to exactly `hi`; keep the
        // documented half-open contract.
        if v < hi {
            v
        } else {
            hi.next_down().max(lo)
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + (<f64 as StandardSample>::sample(rng) as f32) * (hi - lo);
        if v < hi {
            v
        } else {
            hi.next_down().max(lo)
        }
    }
}

/// Types that can be drawn from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from the half-open range `lo..hi`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// Unlike rand's `StdRng` (ChaCha12) this is not cryptographic, and the
    /// same seed produces a different stream than the real crate would; the
    /// workspace only relies on determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 10k uniform draws is close to 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
