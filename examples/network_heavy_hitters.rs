//! Network monitoring: track per-flow sizes, heavy hitters and the number of
//! distinct flows on a backbone-router-like packet stream — the motivating
//! scenario of the paper's introduction (load balancing, accounting, DDoS
//! detection).
//!
//! Run with: `cargo run --release -p salsa-examples --bin network_heavy_hitters`

use salsa_examples::{human_bytes, percent};
use salsa_metrics::{topk_accuracy, GroundTruth};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

fn main() {
    // A synthetic stand-in for the CAIDA NY18 backbone trace (2 M packets).
    let trace = TraceSpec::CaidaNy18.generate(2_000_000, 1);
    let items = trace.items();
    let truth = GroundTruth::from_items(items);

    // A 512 KB SALSA Conservative-Update sketch (the most accurate L1 sketch)
    // plus an on-arrival top-k heap for the 64 heaviest flows.
    let budget = 512 * 1024;
    let width = width_for_budget_bits(budget, 4, 8, 1.0);
    let mut sketch = ConservativeUpdate::salsa(4, width, 8, 99);
    let mut topk = TopK::new(64);

    for &packet in items {
        sketch.update(packet, 1);
        topk.offer(packet, sketch.estimate(packet));
    }

    println!("== SALSA network monitoring ==");
    println!(
        "trace: {} packets, {} distinct flows (NY18-like)",
        items.len(),
        truth.distinct()
    );
    println!(
        "sketch: SALSA CUS, {} ({} counters/row)",
        human_bytes(sketch.size_bytes()),
        width
    );
    println!();

    // Heavy hitters: flows above 0.1% of the traffic.
    let phi = 1e-3;
    let heavy = truth.heavy_hitters(phi);
    println!(
        "true heavy hitters above {} of traffic: {}",
        percent(phi),
        heavy.len()
    );
    let mut worst_rel_err = 0.0f64;
    for &(flow, count) in &heavy {
        let est = sketch.estimate(flow);
        worst_rel_err = worst_rel_err.max((est as f64 - count as f64).abs() / count as f64);
    }
    println!(
        "worst heavy-hitter relative error: {}",
        percent(worst_rel_err)
    );

    // Top-k recall against ground truth.
    let reported: Vec<u64> = topk.items().iter().map(|&(i, _)| i).collect();
    let true_top: Vec<u64> = truth.top_k(64).iter().map(|&(i, _)| i).collect();
    println!(
        "top-64 recall: {}",
        percent(topk_accuracy(&reported, &true_top))
    );

    // Distinct-flow estimate via Linear Counting over the sketch's own rows.
    match sketch.estimate_distinct() {
        Some(est) => println!(
            "distinct flows: estimated {:.0} vs true {} (error {})",
            est,
            truth.distinct(),
            percent((est - truth.distinct() as f64).abs() / truth.distinct() as f64)
        ),
        None => println!("distinct flows: sketch too small for Linear Counting at this load"),
    }
}
