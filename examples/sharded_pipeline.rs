//! Sharded ingestion with `salsa-pipeline`: split a heavy stream across
//! worker shards, then query one merged global view.
//!
//! ```text
//! cargo run --release -p salsa-examples --example sharded_pipeline
//! ```
//!
//! The demo streams a skewed (Zipf) trace through a 4-shard pipeline twice —
//! once hash-partitioned (each key owned by one shard) and once round-robin
//! ("replicated": every shard sees an arbitrary slice) — and shows that with
//! sum-merge rows the merged view is *identical* to a single sketch built
//! unsharded, while each shard only had to absorb a quarter of the load.

use salsa_examples::human_bytes;
use salsa_metrics::mops_for;
use salsa_pipeline::{run_sharded, Partition, PipelineConfig};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

fn main() {
    let updates = 400_000;
    let universe = 50_000;
    let items = TraceSpec::Zipf {
        universe,
        skew: 1.0,
    }
    .generate(updates, 99)
    .items()
    .to_vec();

    // All shards (and the reference sketch) share seed and shape — that is
    // what makes their counters combinable.
    let make = |_shard: usize| CountMin::salsa(4, 1 << 15, 8, MergeOp::Sum, 7);

    let mut single = make(0);
    single.update_batch(&items);
    println!(
        "stream: {updates} updates over {universe} keys; sketch: {} per shard",
        human_bytes(single.size_bytes())
    );

    for partition in [Partition::ByKey, Partition::RoundRobin] {
        let config = PipelineConfig::new(4).partition(partition);
        let out = run_sharded(&config, make, &items);

        let diff = (0..universe as u64)
            .map(|item| out.merged.estimate(item).abs_diff(single.estimate(item)))
            .max()
            .unwrap_or(0);
        println!("\npartition mode: {}", partition.name());
        for (shard, stats) in out.shards.iter().enumerate() {
            println!(
                "  shard {shard}: {:>7} items in {:>4} batches ({:.1} Mops busy)",
                stats.items,
                stats.batches,
                mops_for(stats.items, stats.busy_secs)
            );
        }
        println!(
            "  critical path {:.1} Mops vs single-thread {:.1} Mops equivalent",
            mops_for(out.items, out.critical_path_secs()),
            mops_for(out.items, out.total_busy_secs())
        );
        println!("  max |merged − unsharded| over all keys: {diff} (sum-merge is lossless)");
        assert_eq!(diff, 0);
    }
}
