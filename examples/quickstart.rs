//! Quickstart: build a SALSA Count-Min sketch, feed it a skewed stream, and
//! compare its accuracy and memory against a conventional 32-bit Count-Min
//! sketch of the same size.
//!
//! Run with: `cargo run --release -p salsa-examples --bin quickstart`

use salsa_examples::human_bytes;
use salsa_metrics::{GroundTruth, OnArrivalError};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

fn main() {
    // 1. A skewed stream: one million packets over ~100k flows (Zipf 1.0).
    let trace = TraceSpec::Zipf {
        universe: 100_000,
        skew: 1.0,
    }
    .generate(1_000_000, 7);
    let items = trace.items();

    // 2. Two sketches with the same 256 KB budget and d = 4 rows:
    //    the baseline uses 32-bit counters, SALSA starts from 8-bit counters
    //    (so it fits roughly 3.5× as many) and merges them on demand.
    let budget = 256 * 1024;
    let baseline_width = width_for_budget(budget, 4, 32);
    let salsa_width = width_for_budget_bits(budget, 4, 8, 1.0);
    let mut baseline = CountMin::baseline(4, baseline_width, 32, 42);
    let mut salsa = CountMin::salsa(4, salsa_width, 8, MergeOp::Max, 42);

    // 3. Feed both sketches and record the on-arrival estimation error.
    let mut truth = GroundTruth::new();
    let mut baseline_err = OnArrivalError::new();
    let mut salsa_err = OnArrivalError::new();
    for &item in items {
        baseline.update(item, 1);
        salsa.update(item, 1);
        let exact = truth.record(item) as i64;
        baseline_err.record(baseline.estimate(item) as i64, exact);
        salsa_err.record(salsa.estimate(item) as i64, exact);
    }

    // 4. Query a few of the heaviest flows.
    println!("== SALSA quickstart ==");
    println!(
        "stream: {} updates, {} distinct flows",
        items.len(),
        truth.distinct()
    );
    println!(
        "baseline CMS: {} counters/row x 32 bits = {}",
        baseline_width,
        human_bytes(baseline.size_bytes())
    );
    println!(
        "SALSA CMS:    {} counters/row x 8 bits (+1 merge bit) = {}",
        salsa_width,
        human_bytes(salsa.size_bytes())
    );
    println!();
    println!("top flows (true vs estimates):");
    for (item, count) in truth.top_k(5) {
        println!(
            "  flow {item:>20}  true {count:>7}  baseline {:>7}  SALSA {:>7}",
            baseline.estimate(item),
            salsa.estimate(item)
        );
    }
    println!();
    println!(
        "on-arrival NRMSE: baseline {:.3e}   SALSA {:.3e}",
        baseline_err.nrmse(),
        salsa_err.nrmse()
    );
    println!(
        "SALSA error is {:.1}x lower at the same memory budget",
        baseline_err.nrmse() / salsa_err.nrmse().max(f64::MIN_POSITIVE)
    );
}
