//! Universal monitoring: estimate entropy, frequency moments and the distinct
//! count of a stream from a single SALSA UnivMon sketch — the "one sketch to
//! rule them all" workload of Fig. 12.
//!
//! Run with: `cargo run --release -p salsa-examples --bin univmon_entropy`

use salsa_examples::{human_bytes, percent};
use salsa_metrics::{relative_error, GroundTruth};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

fn main() {
    let trace = TraceSpec::YouTube.generate(1_000_000, 5);
    let items = trace.items();
    let truth = GroundTruth::from_items(items);

    // The paper's UnivMon configuration: 16 Count-Sketch levels, d = 5, and a
    // heap of 100 heavy hitters per level — here with SALSA (8-bit) counters.
    let mut univmon = UnivMon::salsa(16, 5, 1 << 11, 8, 100, 77);
    for &item in items {
        univmon.update(item, 1);
    }

    println!("== SALSA UnivMon ==");
    println!(
        "stream: {} views over {} videos; sketch: {}",
        items.len(),
        truth.distinct(),
        human_bytes(univmon.size_bytes())
    );
    println!();

    let entropy_est = univmon.entropy();
    let entropy_true = truth.entropy();
    println!(
        "entropy:        estimated {entropy_est:.4} bits, exact {entropy_true:.4} bits (error {})",
        percent(relative_error(entropy_est, entropy_true))
    );

    for p in [0.5, 1.0, 1.5, 2.0] {
        let est = univmon.fp_moment(p);
        let exact = truth.moment(p);
        println!(
            "F_{p}:           estimated {est:.3e}, exact {exact:.3e} (error {})",
            percent(relative_error(est, exact))
        );
    }

    let f0_est = univmon.distinct();
    println!(
        "distinct count: estimated {f0_est:.0}, exact {} (error {})",
        truth.distinct(),
        percent(relative_error(f0_est, truth.distinct() as f64))
    );
}
