//! Live queries against a running pipeline: a query thread serves top-k and
//! point estimates from epoch-stamped snapshots while the main thread keeps
//! ingesting — the workers never stop.
//!
//! ```text
//! cargo run --release -p salsa-examples --example live_queries
//! ```
//!
//! The demo streams a skewed (Zipf) trace through a 4-shard pipeline.  A
//! concurrent `LiveHandle` thread periodically snapshots the pipeline
//! (cloning each shard's sketch and folding the clones counter-wise,
//! Section V) and prints the current epoch, the hottest keys, and how stale
//! the served view is.  At the end, a producer-side snapshot at the final
//! epoch is compared against the finished pipeline's merged view.

use std::time::Duration;

use salsa_examples::human_bytes;
use salsa_pipeline::{PipelineConfig, ShardedPipeline, SnapshotSummary};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

fn main() {
    let updates = 600_000;
    let universe = 50_000;
    let items = TraceSpec::Zipf {
        universe,
        skew: 1.0,
    }
    .generate(updates, 2024)
    .items()
    .to_vec();

    // Sketches cannot enumerate their keys, so a serving layer tracks a
    // candidate hot-set to rank; sampling the stream is the simplest one.
    let candidates: Vec<u64> = items.iter().step_by(101).copied().collect();

    let make = |_shard: usize| CountMin::salsa(4, 1 << 15, 8, MergeOp::Sum, 7);
    let mut pipeline = ShardedPipeline::new(&PipelineConfig::new(4), make);
    let handle = pipeline.live_handle();
    println!(
        "4 shards, {} per snapshot clone; querying while {updates} updates stream in\n",
        human_bytes(SnapshotSummary::clone_cost_bytes(&make(0)))
    );

    let querier = std::thread::spawn(move || {
        let mut served = 0u32;
        // A live snapshot: consistent per-shard prefixes, merged into one
        // queryable view. `None` means the pipeline has finished.
        while let Some(view) = handle.snapshot() {
            let top = view.top_k(3, candidates.iter().copied());
            println!(
                "epoch {:>7}: top-3 {:?}  (assembled in {:?}, {} behind live)",
                view.epoch(),
                top.items(),
                view.assembly_time(),
                handle.acknowledged().saturating_sub(view.epoch()),
            );
            served += 1;
            std::thread::sleep(Duration::from_millis(3));
        }
        served
    });

    // Ingest in chunks; the query thread interleaves freely.
    for chunk in items.chunks(4_096) {
        pipeline.extend(chunk);
    }
    let final_epoch = pipeline.drain();
    let final_view = pipeline.snapshot();
    let out = pipeline.finish();
    let served = querier.join().expect("query thread panicked");

    println!(
        "\nfinal snapshot epoch {final_epoch} == items {}",
        out.items
    );
    let diff = items
        .iter()
        .map(|&item| {
            (final_view.estimate(item)
                - salsa_sketches::estimator::FrequencyEstimator::estimate(&out.merged, item))
            .unsigned_abs()
        })
        .max()
        .unwrap_or(0);
    println!("max |final snapshot − finished view| over all keys: {diff} (sum-merge is lossless)");
    println!("queries served while ingesting: {served}");
    assert_eq!(final_epoch, out.items);
    assert_eq!(diff, 0);
}
