//! Shared helpers for the runnable SALSA examples.
//!
//! The example binaries in this package (`quickstart`,
//! `network_heavy_hitters`, `change_detection`, `univmon_entropy`) exercise
//! the public API of the workspace crates on realistic scenarios.  Run them
//! with, e.g.:
//!
//! ```text
//! cargo run --release -p salsa-examples --example quickstart
//! ```

/// Formats a byte count as a human-readable string (e.g. `512 KiB`).
pub fn human_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a ratio as a percentage string.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(100), "100 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(2 << 20), "2.00 MiB");
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.5), "50.0%");
    }
}
