//! A network query server over a live pipeline: `salsa-serve` fronts an
//! elastic pipeline on a loopback socket while clients issue point
//! queries, candidate-set top-k, and a push-mode subscription — all over
//! the length-delimited wire protocol, with request coalescing and load
//! shedding in between.
//!
//! ```text
//! cargo run --release -p salsa-examples --example query_server
//! ```
//!
//! The demo streams a skewed (Zipf) trace through a 2-shard elastic
//! pipeline, stands a TCP server in front of its handle, and runs three
//! kinds of client against it: a burst of concurrent point-queriers
//! (whose snapshot fetches coalesce), one top-k query, and a subscriber
//! that receives seq-stamped pushes while ingestion continues through a
//! 2 → 4 rescale.  Every answer carries the serving view's epoch and
//! coverage; the server's counters tell the coalescing story at the end.

use std::time::Duration;

use salsa_pipeline::{ElasticPipeline, PipelineConfig};
use salsa_serve::{serve, QueryClient, ServeConfig};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

fn main() {
    let updates = 400_000;
    let universe = 50_000;
    let items = TraceSpec::Zipf {
        universe,
        skew: 1.0,
    }
    .generate(updates, 2026)
    .items()
    .to_vec();
    let candidates: Vec<u64> = items.iter().step_by(101).copied().collect();

    let mut pipeline = ElasticPipeline::new(&PipelineConfig::new(2), |_| {
        CountMin::salsa(4, 1 << 15, 8, MergeOp::Sum, 7)
    });
    // Port 0: the OS picks a free port; handle.addr() is the real one.
    let server = serve("127.0.0.1:0", pipeline.handle(), ServeConfig::default())
        .expect("bind a loopback socket");
    let addr = server.addr();
    println!("serving on {addr}\n");

    pipeline.extend(&items[..updates / 2]);

    // A burst of concurrent point queries: requests landing inside one
    // coalescing window share a single snapshot fetch.
    let queriers: Vec<_> = (0..4)
        .map(|worker| {
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connect");
                for item in 0..200u64 {
                    let answer = client.point(item).expect("point query");
                    if worker == 0 && item % 50 == 0 {
                        println!(
                            "item {item:>3}: estimate {:>6}  (epoch {}, gen {})",
                            answer.estimate, answer.meta.epoch, answer.meta.generation
                        );
                    }
                }
            })
        })
        .collect();
    for handle in queriers {
        handle.join().expect("querier panicked");
    }

    // Push mode: the server streams a refreshed top-k at a fixed cadence
    // while the main thread keeps ingesting and rescales underneath it.
    let subscriber = {
        let candidates = candidates.clone();
        std::thread::spawn(move || {
            let client = QueryClient::connect(addr).expect("connect");
            let mut sub = client
                .subscribe(3, Duration::from_millis(20), &candidates)
                .expect("subscribe");
            for _ in 0..8 {
                let update = sub.next_update().expect("pushed update");
                println!(
                    "push #{:<2} epoch {:>7} gen {}: top-3 {:?}",
                    update.seq, update.meta.epoch, update.meta.generation, update.entries
                );
            }
        })
    };

    pipeline.rescale(4).expect("2 -> 4 rescale");
    for chunk in items[updates / 2..].chunks(4_096) {
        pipeline.extend(chunk);
        std::thread::sleep(Duration::from_millis(2));
    }
    let epoch = pipeline.drain();
    subscriber.join().expect("subscriber panicked");

    // One classic request-response top-k against the drained stream.
    let mut client = QueryClient::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(5)); // let the cache TTL lapse
    let top = client.top_k(5, &candidates).expect("top-k query");
    println!(
        "\nfinal top-5 at epoch {}: {:?}",
        top.meta.epoch, top.entries
    );
    let stats = client.stats().expect("stats");
    println!(
        "server counters: accepted {}, coalesced {} ({}% of point/top-k), \
         shed {}, cache {} hits / {} misses",
        stats.accepted,
        stats.coalesced,
        100 * stats.coalesced / stats.accepted.max(1),
        stats.shed,
        stats.cache_hits,
        stats.cache_misses,
    );
    assert_eq!(epoch, updates as u64);
    assert_eq!(top.meta.epoch, updates as u64);
    drop(server);
    pipeline.finish();
    println!("server drained and shut down cleanly");
}
