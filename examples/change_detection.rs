//! Change detection: sketch two measurement epochs with SALSA Count Sketches
//! that share hash functions, subtract them, and report the flows whose
//! traffic changed the most — the Turnstile use-case of Section V
//! ("Merging and Subtracting SALSA Sketches") and Fig. 15c/d.
//!
//! Run with: `cargo run --release -p salsa-examples --bin change_detection`

use salsa_examples::human_bytes;
use salsa_sketches::prelude::*;
use salsa_workloads::{stream, TraceSpec};

fn main() {
    // One stream split into two equal epochs A and B; the task is to find the
    // flows whose frequency changed the most between the epochs.
    let trace = TraceSpec::CaidaCh16.generate(2_000_000, 3);
    let (epoch_a, epoch_b) = stream::split_halves(trace.items());
    let exact = stream::exact_changes(epoch_a, epoch_b);

    // Two SALSA Count Sketches with the same seed (hence the same hashes).
    let budget = 512 * 1024;
    let width = width_for_budget_bits(budget, 5, 8, 1.0);
    let seed = 2024;
    let mut sketch_a = CountSketch::salsa(5, width, 8, seed);
    let mut sketch_b = CountSketch::salsa(5, width, 8, seed);
    for &flow in epoch_a {
        sketch_a.update(flow, 1);
    }
    for &flow in epoch_b {
        sketch_b.update(flow, 1);
    }

    // The difference sketch s(B \ A) estimates per-flow changes directly.
    let mut diff = sketch_b.clone();
    diff.subtract(&sketch_a);

    println!("== SALSA change detection ==");
    println!(
        "epochs: {} + {} packets; difference sketch: {}",
        epoch_a.len(),
        epoch_b.len(),
        human_bytes(diff.size_bytes())
    );

    // Rank the true changes and compare against the sketch's estimates.
    let mut changes: Vec<(u64, i64)> = exact.iter().map(|(&f, &c)| (f, c)).collect();
    changes.sort_by_key(|&(_, c)| std::cmp::Reverse(c.abs()));
    println!();
    println!("largest true changes (flow, true change, estimated change):");
    for &(flow, change) in changes.iter().take(8) {
        println!("  {flow:>20}  {change:>8}  {:>8}", diff.estimate(flow));
    }

    // Aggregate quality: NRMSE over all flows that appeared in either epoch.
    let nrmse = salsa_metrics::error::change_detection_nrmse(
        &exact,
        |flow| diff.estimate(flow),
        epoch_a.len() as u64,
    );
    println!();
    println!(
        "change-detection NRMSE over {} flows: {nrmse:.3e}",
        exact.len()
    );
}
