//! Self-adjusting shard scaling: an elastic pipeline rides out a bursty
//! workload, growing when the workers saturate and shrinking when they
//! idle — while a concurrent handle keeps querying across every rescale.
//!
//! ```text
//! cargo run --release -p salsa-examples --example elastic_scaling
//! ```
//!
//! The demo alternates full-speed bursts of a Zipf trace with throttled
//! idle phases.  A [`LoadMonitor`] samples queue depth and utilization
//! into shared gauges; a [`Threshold`] policy turns sustained saturation
//! into grow decisions and sustained idleness into shrink decisions (with
//! hysteresis and cooldown, so nothing flaps).  Every rescale seals the
//! current worker generation into an immutable sketch and starts a fresh
//! worker set — queries fold sealed generations with the live shards, so
//! estimates cover the whole stream at monotone epochs, and the final
//! merged view is *identical* to an unsharded run (sum-merge rows).
//!
//! [`LoadMonitor`]: salsa_pipeline::LoadMonitor
//! [`Threshold`]: salsa_pipeline::Threshold

use std::time::Duration;

use salsa_pipeline::{ElasticPipeline, LoadMonitor, PipelineConfig, Threshold};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

fn main() {
    let universe = 50_000;
    let items = TraceSpec::Zipf {
        universe,
        skew: 1.0,
    }
    .generate(400_000, 2026)
    .items()
    .to_vec();

    let make = |_shard: usize| CountMin::salsa(4, 1 << 15, 8, MergeOp::Sum, 7);
    let mut pipeline = ElasticPipeline::new(&PipelineConfig::new(1), make);
    let handle = pipeline.handle();
    let mut monitor = LoadMonitor::new();
    let gauges = std::sync::Arc::clone(monitor.gauges());
    // Grow on a sustained two-batch backlog, shrink below 20% utilization.
    let mut policy = Threshold::new(1, 4, 2 * PipelineConfig::DEFAULT_BATCH_SIZE as u64, 0.2);

    // A query thread that never stops: across every rescale it sees
    // monotone epochs and whole-stream estimates.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let querier = {
        let handle = handle.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut served = 0u32;
            let mut last_epoch = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let Some(view) = handle.snapshot() else { break };
                assert!(view.epoch() >= last_epoch, "epochs must be monotone");
                last_epoch = view.epoch();
                served += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            served
        })
    };

    println!("phase      tick  shards  queue_depth  utilization  decision");
    for (phase, burst) in [(1, true), (2, false), (3, true), (4, false)] {
        for tick in 0..12 {
            if burst {
                // Burst: a quarter of the trace at full speed per tick.
                pipeline.extend(&items[..items.len() / 4]);
            } else {
                // Idle: a trickle, with real time passing.
                std::thread::sleep(Duration::from_millis(15));
                pipeline.extend(&items[..256]);
                pipeline.drain();
            }
            let event = pipeline.autoscale(&mut monitor, &mut policy);
            let decision = match event {
                Some(e) => format!(
                    "rescale {} -> {} ({:?})",
                    e.from_shards, e.to_shards, e.pause
                ),
                None => "-".to_string(),
            };
            println!(
                "phase {phase}   {tick:>4}  {:>6}  {:>11.0}  {:>11.2}  {decision}",
                pipeline.shards(),
                gauges.max_queue_depth.get(),
                gauges.utilization.get(),
            );
        }
    }

    stop.store(true, std::sync::atomic::Ordering::Release);
    let final_epoch = pipeline.drain();
    let final_view = pipeline.snapshot();
    assert_eq!(final_view.epoch(), final_epoch);
    let out = pipeline.finish();
    let served = querier.join().expect("query thread panicked");

    println!("\nrescales: {}", out.rescales());
    for event in &out.events {
        println!(
            "  epoch {:>8}: {} -> {} shards, paused {:?}",
            event.epoch, event.from_shards, event.to_shards, event.pause
        );
    }
    println!(
        "generations: {:?} (shard counts over time)",
        out.generations.iter().map(|g| g.shards).collect::<Vec<_>>()
    );
    println!("queries served across rescales: {served}");
    println!("final epoch {final_epoch} == items {}", out.items);

    // Exactness: the elastic run's merged view equals an unsharded sketch
    // fed the identical stream.
    let mut single = make(0);
    let per_burst = items.len() / 4;
    for _ in 0..24 {
        single.update_batch(&items[..per_burst]);
    }
    for _ in 0..24 {
        single.update_batch(&items[..256]);
    }
    let diff = (0..universe as u64)
        .map(|item| {
            FrequencyEstimator::estimate(&out.merged, item)
                .abs_diff(FrequencyEstimator::estimate(&single, item))
        })
        .max()
        .unwrap_or(0);
    println!("max |elastic − unsharded| over all keys: {diff} (sum-merge is lossless)");
    assert_eq!(final_epoch, out.items);
    assert_eq!(diff, 0);
}
