//! Sharded UnivMon: universal statistics (entropy, frequency moments,
//! distinct count) served live from a sharded pipeline — no frequency
//! sketch anywhere in the transport.
//!
//! ```text
//! cargo run --release -p salsa-examples --example sharded_univmon
//! ```
//!
//! The pipeline is bound only to the `StreamSummary` contract (*ingest a
//! batch, merge counter-wise*), so UnivMon rides the same worker shards,
//! snapshots, and merges as CMS/CUS/CS.  The demo streams a Zipf trace
//! through 4 UnivMon shards, takes a live mid-stream snapshot and prints
//! its entropy/F2/distinct estimates against exact values, then compares
//! the finished merged sketch to an unsharded run of the same stream.

use std::collections::HashMap;

use salsa_pipeline::{PipelineConfig, ShardedPipeline, StreamSummary};
use salsa_sketches::prelude::*;
use salsa_workloads::TraceSpec;

/// Exact (entropy, F2, distinct) of `items`.
fn exact_stats(items: &[u64]) -> (f64, f64, f64) {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    let n = items.len() as f64;
    let entropy = -counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.log2()
        })
        .sum::<f64>();
    let f2 = counts.values().map(|&c| (c as f64) * (c as f64)).sum();
    (entropy, f2, counts.len() as f64)
}

fn main() {
    let updates = 400_000;
    let universe = 20_000;
    let items = TraceSpec::Zipf {
        universe,
        skew: 1.0,
    }
    .generate(updates, 2026)
    .items()
    .to_vec();

    // 12 levels of 5×2^12 SALSA Count Sketches, a 100-item heap per level.
    let make = |_shard: usize| UnivMon::salsa(12, 5, 1 << 12, 8, 100, 7);
    let mut pipeline = ShardedPipeline::new(&PipelineConfig::new(4), make);
    println!("4 UnivMon shards, {updates} Zipf updates over {universe} keys\n");

    // Mid-stream: a live snapshot merges per-shard clones into one queryable
    // UnivMon, and the view exposes the universal queries directly.
    let cut = items.len() / 2;
    pipeline.extend(&items[..cut]);
    let view = pipeline.snapshot();
    let (entropy, f2, distinct) = exact_stats(&items[..cut]);
    println!("live snapshot at epoch {}:", view.epoch());
    println!("  entropy  {:>10.4}  (exact {entropy:.4})", view.entropy());
    println!(
        "  F2       {:>10.3e}  (exact {f2:.3e})",
        view.fp_moment(2.0)
    );
    println!("  distinct {:>10.0}  (exact {distinct})", view.distinct());

    // The snapshot had no side effects; finish and compare the merged
    // sketch against an unsharded UnivMon of the same stream.
    pipeline.extend(&items[cut..]);
    let out = pipeline.finish();
    let mut single = make(0);
    single.ingest(&items);
    let (entropy, _, _) = exact_stats(&items);
    println!("\nfull stream ({} items):", out.items);
    println!(
        "  entropy: sharded {:.4}, unsharded {:.4}, exact {entropy:.4}",
        out.merged.entropy(),
        single.entropy()
    );
    println!(
        "  distinct: sharded {:.0}, unsharded {:.0}",
        out.merged.distinct(),
        single.distinct()
    );
    assert!((out.merged.entropy() - entropy).abs() / entropy < 0.2);
    assert_eq!(out.merged.total(), single.total(), "totals merge exactly");
}
